package jpegcodec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hetjpeg/internal/jfif"
)

// TestQuickEncodeDecodeArbitrary encodes random smooth-ish images of
// random dimensions and subsamplings and checks that (a) our decoder
// round-trips them within lossy-compression tolerance and (b) the
// chunked entropy decode agrees with the one-shot decode.
func TestQuickEncodeDecodeArbitrary(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 1 + rng.Intn(120)
		h := 1 + rng.Intn(120)
		sub := []jfif.Subsampling{jfif.Sub444, jfif.Sub422, jfif.Sub420}[rng.Intn(3)]
		quality := 60 + rng.Intn(40)

		// Smooth random field (random DC per 16x16 cell, interpolated
		// nearest): compressible but non-trivial.
		img := NewRGBImage(w, h)
		cw, chh := (w+15)/16+1, (h+15)/16+1
		cells := make([][3]byte, cw*chh)
		for i := range cells {
			cells[i] = [3]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				c := cells[(y/16)*cw+x/16]
				img.Set(x, y, c[0], c[1], c[2])
			}
		}

		data, err := Encode(img, EncodeOptions{Quality: quality, Subsampling: sub})
		if err != nil {
			t.Logf("seed %d: encode: %v", seed, err)
			return false
		}
		out, err := DecodeScalar(data)
		if err != nil {
			t.Logf("seed %d (%dx%d %v q%d): decode: %v", seed, w, h, sub, quality, err)
			return false
		}
		if out.W != w || out.H != h {
			return false
		}
		// Interior of constant cells must reconstruct closely; check
		// overall mean error stays lossy-bounded.
		var sum float64
		for i := range img.Pix {
			sum += math.Abs(float64(img.Pix[i]) - float64(out.Pix[i]))
		}
		if mae := sum / float64(len(img.Pix)); mae > 20 {
			t.Logf("seed %d (%dx%d %v q%d): MAE %.1f", seed, w, h, sub, quality, mae)
			return false
		}

		// Chunked decode agreement.
		f1, ed1, err := PrepareDecode(data)
		if err != nil {
			return false
		}
		if err := ed1.DecodeAll(); err != nil {
			return false
		}
		f2, ed2, err := PrepareDecode(data)
		if err != nil {
			return false
		}
		step := 1 + rng.Intn(4)
		for !ed2.Done() {
			if _, err := ed2.DecodeRows(step); err != nil {
				return false
			}
		}
		for c := range f1.Coeff {
			if !equalInt32(f1.Coeff[c], f2.Coeff[c]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTruncatedStreamsDoNotPanic feeds progressively truncated valid
// streams to the decoder; every prefix must either decode or fail
// cleanly.
func TestTruncatedStreamsDoNotPanic(t *testing.T) {
	img := makeTestImage(64, 48, 4)
	data, err := Encode(img, EncodeOptions{Quality: 80, Subsampling: jfif.Sub422})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut += 7 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at truncation %d: %v", cut, r)
				}
			}()
			_, _ = DecodeScalar(data[:cut])
		}()
	}
}

// TestBitFlippedStreamsDoNotPanic mutates single bytes of the entropy
// segment; decoding may fail or produce garbage pixels but must not
// panic or write out of bounds.
func TestBitFlippedStreamsDoNotPanic(t *testing.T) {
	img := makeTestImage(96, 64, 6)
	orig, err := Encode(img, EncodeOptions{Quality: 80, Subsampling: jfif.Sub444})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		data := append([]byte(nil), orig...)
		// Mutate within the tail (likely entropy data).
		pos := len(data)/2 + rng.Intn(len(data)/2)
		data[pos] ^= byte(1 + rng.Intn(255))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic with mutation at %d: %v", pos, r)
				}
			}()
			_, _ = DecodeScalar(data)
		}()
	}
}

// TestLargeDimensionLimits rejects dimensions beyond JPEG's 16-bit
// fields.
func TestLargeDimensionLimits(t *testing.T) {
	img := NewRGBImage(1, 1)
	img.W = 70000 // lie about the size
	img.Pix = make([]byte, 70000*3)
	img.H = 1
	if _, err := Encode(img, EncodeOptions{}); err == nil {
		t.Fatal("oversized width accepted")
	}
}

// TestEncodeDeterministic ensures the encoder is a pure function.
func TestEncodeDeterministic(t *testing.T) {
	img := makeTestImage(80, 60, 10)
	a, err := Encode(img, EncodeOptions{Quality: 77, Subsampling: jfif.Sub420})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(img, EncodeOptions{Quality: 77, Subsampling: jfif.Sub420})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("encoder output varies across calls")
	}
}

// TestIDCTBlockRowsPartialEqualsFull verifies region IDCT composability:
// transforming [0,k) then [k,n) equals transforming [0,n) at once.
func TestIDCTBlockRowsPartialEqualsFull(t *testing.T) {
	img := makeTestImage(128, 96, 12)
	data, err := Encode(img, EncodeOptions{Quality: 85, Subsampling: jfif.Sub422})
	if err != nil {
		t.Fatal(err)
	}
	fA, edA, _ := PrepareDecode(data)
	if err := edA.DecodeAll(); err != nil {
		t.Fatal(err)
	}
	fB, edB, _ := PrepareDecode(data)
	if err := edB.DecodeAll(); err != nil {
		t.Fatal(err)
	}
	for c := range fA.Planes {
		IDCTRange(fA, c, 0, fA.MCURows)
		n := fB.Planes[c].BlockRows
		IDCTBlockRows(fB, c, 0, n/2)
		IDCTBlockRows(fB, c, n/2, n)
	}
	for c := range fA.Samples {
		if !bytes.Equal(fA.Samples[c], fB.Samples[c]) {
			t.Fatalf("component %d: split IDCT differs", c)
		}
	}
}
