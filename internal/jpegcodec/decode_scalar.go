package jpegcodec

import (
	"fmt"
	"sync"

	"hetjpeg/internal/color"
	"hetjpeg/internal/dct"
	"hetjpeg/internal/jfif"
)

// This file implements the scalar (non-SIMD) CPU parallel phase: the
// reference implementation of dequantization + IDCT, upsampling and color
// conversion. Every other execution path (SIMD analog, simulated GPU
// kernels) must produce byte-identical output.
//
// The hot path is a fused MCU-row-band pipeline: each band is
// dequantized + inverse-transformed and then immediately upsampled and
// color-converted while its samples are still in L1/L2, instead of the
// textbook three whole-plane passes. The IDCT dispatches per-block on
// the sparsity summary entropy decoding recorded (Frame.NZ): DC-only
// and 4x4-sparse blocks skip most of the transform, and all kernels
// write clamped bytes straight into the plane.

// IDCTRange dequantizes and inverse-transforms every block of component c
// within MCU rows [m0, m1), writing reconstructed samples into
// f.Samples[c].
func IDCTRange(f *Frame, c, m0, m1 int) {
	p := f.Planes[c]
	IDCTBlockRows(f, c, m0*p.V, m1*p.V)
}

// IDCTBlockRows transforms block rows [b0, b1) of component c. The
// heterogeneous decoder uses it for the one-block-row halo the 4:2:0
// vertical filter needs above a CPU partition. Under decode-to-scale it
// dispatches the scaled kernels instead, writing BlockPix x BlockPix
// samples per block; the NZ sparsity watermark keeps driving the
// DC-flat fast path at every scale.
func IDCTBlockRows(f *Frame, c, b0, b1 int) {
	p := f.Planes[c]
	q := f.QuantInt(c)
	pw := p.PlaneW()
	plane := f.Samples[c]
	coeff := f.Coeff[c]
	if f.DCOnly() {
		// Baseline 1/8 scale: one stored DC per block, one sample out.
		for by := b0; by < b1; by++ {
			rowBase := by * pw
			blkBase := by * p.BlocksPerRow
			for bx := 0; bx < p.BlocksPerRow; bx++ {
				dct.InverseIntScaled1x1Bytes(coeff[blkBase+bx]*q[0],
					plane[rowBase+bx:rowBase+bx+1:rowBase+bx+1])
			}
		}
		return
	}
	bp := f.BlockPix
	if bp == 0 {
		bp = 8
	}
	nz := f.NZ[c] // nil when the frame skipped entropy bookkeeping
	for by := b0; by < b1; by++ {
		rowBase := by * bp * pw
		blkBase := by * p.BlocksPerRow
		for bx := 0; bx < p.BlocksPerRow; bx++ {
			blk := coeff[(blkBase+bx)*64 : (blkBase+bx)*64+64 : (blkBase+bx)*64+64]
			dst := plane[rowBase+bx*bp:]
			var n uint8
			if nz != nil {
				n = nz[blkBase+bx]
			}
			switch bp {
			case 8:
				switch {
				case n == 1:
					dct.InverseIntDCBytes(blk[0]*q[0], dst, pw)
				case n != 0 && n <= dct.SparseCutoff4x4+1:
					dct.InverseInt4x4DequantBytes(blk, q, dst, pw)
				default:
					dct.InverseIntDequantBytes(blk, q, dst, pw)
				}
			case 4:
				if n == 1 {
					dct.InverseIntScaledDCBytes(blk[0]*q[0], 4, dst, pw)
				} else {
					dct.InverseIntScaled4x4DequantBytes(blk, q, dst, pw)
				}
			case 2:
				if n == 1 {
					dct.InverseIntScaledDCBytes(blk[0]*q[0], 2, dst, pw)
				} else {
					dct.InverseIntScaled2x2DequantBytes(blk, q, dst, pw)
				}
			case 1:
				// Progressive 1/8 scale keeps full coefficient storage;
				// reconstruction still reads only the DC term.
				dct.InverseIntScaled1x1Bytes(blk[0]*q[0], dst[:1:1])
			}
		}
	}
}

// convertScratch holds the per-goroutine upsampling rows the chroma
// filters write, so band-sized conversion calls allocate nothing.
type convertScratch struct {
	cbUp, crUp []byte
	blend      []int
}

func newConvertScratch(f *Frame) *convertScratch {
	if len(f.Planes) < 3 || f.Sub == jfif.Sub444 {
		return &convertScratch{}
	}
	cpw := f.Planes[1].PlaneW()
	cs := &convertScratch{
		cbUp: make([]byte, 2*cpw),
		crUp: make([]byte, 2*cpw),
	}
	if f.Sub == jfif.Sub420 {
		cs.blend = make([]int, cpw) // vertical-blend row, 4:2:0 only
	}
	return cs
}

// ColorConvertRange upsamples (if needed) and color-converts luma pixel
// rows [r0, r1) into the interleaved RGB output buffer. Sample planes for
// the covered region must already be reconstructed.
func ColorConvertRange(f *Frame, r0, r1 int, out *RGBImage) {
	colorConvertRange(f, r0, r1, out, newConvertScratch(f))
}

func colorConvertRange(f *Frame, r0, r1 int, out *RGBImage, cs *convertScratch) {
	w := f.outW()
	switch f.Sub {
	case jfif.SubGray:
		yPlane := f.Samples[0]
		pw := f.Planes[0].PlaneW()
		for y := r0; y < r1; y++ {
			row := yPlane[y*pw : y*pw+w : y*pw+w]
			dst := out.Pix[y*w*3 : y*w*3+w*3 : y*w*3+w*3]
			for x := 0; x < w; x++ {
				v := row[x]
				dst[x*3], dst[x*3+1], dst[x*3+2] = v, v, v
			}
		}
	case jfif.Sub444:
		pw := f.Planes[0].PlaneW()
		yP, cbP, crP := f.Samples[0], f.Samples[1], f.Samples[2]
		for y := r0; y < r1; y++ {
			color.ConvertRow(yP[y*pw:], cbP[y*pw:], crP[y*pw:], out.Pix[y*w*3:], w)
		}
	case jfif.Sub422:
		ypw := f.Planes[0].PlaneW()
		cpw := f.Planes[1].PlaneW()
		yP, cbP, crP := f.Samples[0], f.Samples[1], f.Samples[2]
		for y := r0; y < r1; y++ {
			color.UpsampleRowH2V1Fancy(cbP[y*cpw:y*cpw+cpw], cs.cbUp)
			color.UpsampleRowH2V1Fancy(crP[y*cpw:y*cpw+cpw], cs.crUp)
			color.ConvertRow(yP[y*ypw:], cs.cbUp, cs.crUp, out.Pix[y*w*3:], w)
		}
	case jfif.Sub420:
		ypw := f.Planes[0].PlaneW()
		cpw := f.Planes[1].PlaneW()
		yP, cbP, crP := f.Samples[0], f.Samples[1], f.Samples[2]
		ch := f.Planes[1].PlaneH()
		for y := r0; y < r1; y++ {
			upsample420Row(cbP, cpw, ch, y, cs.cbUp, cs.blend)
			upsample420Row(crP, cpw, ch, y, cs.crUp, cs.blend)
			color.ConvertRow(yP[y*ypw:], cs.cbUp, cs.crUp, out.Pix[y*w*3:], w)
		}
	}
}

// upsample420Row produces one full-resolution chroma row (output luma row
// index y) from an h2v2 plane using the fancy triangle filter: a 3:1
// vertical blend of the two nearest chroma rows followed by the
// horizontal Algorithm 1 filter. blend is caller-provided scratch of
// length >= cpw.
func upsample420Row(plane []byte, cpw, ch, y int, out []byte, blend []int) {
	near := y / 2
	var far int
	if y%2 == 0 {
		far = near - 1
	} else {
		far = near + 1
	}
	if far < 0 {
		far = 0
	}
	if far >= ch {
		far = ch - 1
	}
	rn := plane[near*cpw : near*cpw+cpw]
	rf := plane[far*cpw : far*cpw+cpw]
	// Vertical 3:1 blend into 10-bit intermediate, then the horizontal
	// triangle filter on the blended row (libjpeg h2v2 fancy upsampling).
	blend = blend[:cpw]
	for i := range blend {
		blend[i] = 3*int(rn[i]) + int(rf[i])
	}
	n := cpw
	out[0] = byte((4*blend[0] + 8) >> 4)
	if n == 1 {
		out[1] = out[0]
		return
	}
	out[1] = byte((3*blend[0] + blend[1] + 7) >> 4)
	for i := 1; i < n-1; i++ {
		c := 3 * blend[i]
		out[2*i] = byte((c + blend[i-1] + 8) >> 4)
		out[2*i+1] = byte((c + blend[i+1] + 7) >> 4)
	}
	out[2*n-2] = byte((3*blend[n-1] + blend[n-2] + 8) >> 4)
	out[2*n-1] = byte((4*blend[n-1] + 8) >> 4)
}

// bandBound returns the exclusive pixel row up to which color conversion
// is safe once MCU rows [.., m) are reconstructed. For 4:2:0 the last
// pixel row of band m-1 reads the first chroma row of band m through the
// vertical triangle filter, so interior bounds shift up one row (the
// same deferral rule the GPU chunk scheduler applies, gpuRowBound).
func bandBound(f *Frame, m int) int {
	y := m * f.mcuOutH()
	if f.Sub == jfif.Sub420 && m < f.MCURows {
		y--
	}
	if y > f.outH() {
		y = f.outH()
	}
	return y
}

// ParallelPhaseScalar runs the full scalar parallel phase (dequant+IDCT,
// upsample, color conversion) for MCU rows [m0, m1) as a fused band
// pipeline: each MCU row band is transformed and then immediately
// upsampled and color-converted while hot in cache.
func ParallelPhaseScalar(f *Frame, m0, m1 int, out *RGBImage) {
	parallelPhaseBands(f, m0, m1, out, newConvertScratch(f))
}

// parallelPhaseBands is the fused pipeline over MCU rows [m0, m1),
// converting pixel rows [PixelRows(m0), yEnd-deferred bounds .. r1).
func parallelPhaseBands(f *Frame, m0, m1 int, out *RGBImage, cs *convertScratch) {
	r0, r1 := f.PixelRows(m0, m1)
	y := r0
	for m := m0; m < m1; m++ {
		for c := range f.Planes {
			IDCTRange(f, c, m, m+1)
		}
		yEnd := r1
		if m+1 < m1 {
			yEnd = bandBound(f, m+1)
		}
		colorConvertRange(f, y, yEnd, out, cs)
		y = yEnd
	}
}

// ParallelPhaseScalarWorkers runs the fused parallel phase with an
// intra-image worker pool over contiguous MCU-row chunks — the paper's
// own CPU parallel-phase decomposition, one band per worker on the
// shared BandPlan machinery. Output is byte-identical to the sequential
// pipeline: for 4:2:0, the two pixel rows at each chunk seam (whose
// vertical chroma filter reads both chunks) are deferred until every
// chunk's reconstruction finished. workers <= 1 runs sequentially.
func ParallelPhaseScalarWorkers(f *Frame, m0, m1 int, out *RGBImage, workers int) {
	rows := m1 - m0
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		ParallelPhaseScalar(f, m0, m1, out)
		return
	}
	bp := planBandsN(f, m0, m1, workers)
	var wg sync.WaitGroup
	for i := 0; i < bp.Bands(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bp.ExecBand(i, out, &ConvertScratch{})
		}(i)
	}
	wg.Wait()
	bp.FinishSeams(out, &ConvertScratch{})
}

// DecodeScalar is the sequential reference decoder (the libjpeg analog):
// entropy decode then the scalar parallel phase, whole image.
func DecodeScalar(data []byte) (*RGBImage, error) {
	return DecodeScalarScaled(data, Scale1)
}

// DecodeScalarScaled is the sequential reference decoder at a decode
// scale — the scalar scaled reference every other execution path's
// scaled output must match byte for byte.
func DecodeScalarScaled(data []byte, scale Scale) (*RGBImage, error) {
	f, ed, err := PrepareDecodeScaled(data, scale)
	if err != nil {
		return nil, err
	}
	if err := ed.DecodeAll(); err != nil {
		return nil, err
	}
	out := NewRGBImage(f.OutW, f.OutH)
	ParallelPhaseScalar(f, 0, f.MCURows, out)
	return out, nil
}

// PrepareDecode parses the stream and allocates whole-image buffers,
// returning the frame and a chunked entropy decoder positioned at row 0.
func PrepareDecode(data []byte) (*Frame, *EntropyDecoder, error) {
	return PrepareDecodeScaled(data, Scale1)
}

// PrepareDecodeScaled is PrepareDecode at a decode scale; an invalid
// scale fails with ErrUnsupportedScale before the stream is parsed.
func PrepareDecodeScaled(data []byte, scale Scale) (*Frame, *EntropyDecoder, error) {
	if err := scale.Validate(); err != nil {
		return nil, nil, err
	}
	im, err := jfif.Parse(data)
	if err != nil {
		return nil, nil, err
	}
	for _, c := range im.Components {
		if im.Quant[c.QuantSel] == nil {
			return nil, nil, fmt.Errorf("jpegcodec: missing quant table %d", c.QuantSel)
		}
	}
	f, err := NewFrameScaled(im, scale)
	if err != nil {
		return nil, nil, err
	}
	return f, NewEntropyDecoder(f), nil
}
