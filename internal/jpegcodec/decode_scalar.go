package jpegcodec

import (
	"fmt"

	"hetjpeg/internal/color"
	"hetjpeg/internal/dct"
	"hetjpeg/internal/jfif"
)

// This file implements the scalar (non-SIMD) CPU parallel phase: the
// reference implementation of dequantization + IDCT, upsampling and color
// conversion. Every other execution path (SIMD analog, simulated GPU
// kernels) must produce byte-identical output.

// IDCTRange dequantizes and inverse-transforms every block of component c
// within MCU rows [m0, m1), writing reconstructed samples into
// f.Samples[c].
func IDCTRange(f *Frame, c, m0, m1 int) {
	p := f.Planes[c]
	IDCTBlockRows(f, c, m0*p.V, m1*p.V)
}

// IDCTBlockRows transforms block rows [b0, b1) of component c. The
// heterogeneous decoder uses it for the one-block-row halo the 4:2:0
// vertical filter needs above a CPU partition.
func IDCTBlockRows(f *Frame, c, b0, b1 int) {
	p := f.Planes[c]
	quant := f.Img.Quant[f.Img.Components[c].QuantSel]
	pw := p.PlaneW()
	var in, out [64]int32
	for by := b0; by < b1; by++ {
		for bx := 0; bx < p.BlocksPerRow; bx++ {
			blk := f.Block(c, bx, by)
			for i := 0; i < 64; i++ {
				in[i] = blk[i] * int32(quant[i])
			}
			dct.InverseInt(&in, &out)
			base := by*8*pw + bx*8
			plane := f.Samples[c]
			for y := 0; y < 8; y++ {
				row := plane[base+y*pw : base+y*pw+8 : base+y*pw+8]
				for x := 0; x < 8; x++ {
					row[x] = byte(out[y*8+x])
				}
			}
		}
	}
}

// ColorConvertRange upsamples (if needed) and color-converts luma pixel
// rows [r0, r1) into the interleaved RGB output buffer. Sample planes for
// the covered region must already be reconstructed.
func ColorConvertRange(f *Frame, r0, r1 int, out *RGBImage) {
	w := f.Img.Width
	switch f.Sub {
	case jfif.SubGray:
		yPlane := f.Samples[0]
		pw := f.Planes[0].PlaneW()
		for y := r0; y < r1; y++ {
			row := yPlane[y*pw:]
			dst := out.Pix[y*w*3:]
			for x := 0; x < w; x++ {
				v := row[x]
				dst[x*3], dst[x*3+1], dst[x*3+2] = v, v, v
			}
		}
	case jfif.Sub444:
		pw := f.Planes[0].PlaneW()
		yP, cbP, crP := f.Samples[0], f.Samples[1], f.Samples[2]
		for y := r0; y < r1; y++ {
			yr := yP[y*pw:]
			cbr := cbP[y*pw:]
			crr := crP[y*pw:]
			dst := out.Pix[y*w*3:]
			for x := 0; x < w; x++ {
				r, g, b := color.YCbCrToRGB(int32(yr[x]), int32(cbr[x]), int32(crr[x]))
				dst[x*3], dst[x*3+1], dst[x*3+2] = r, g, b
			}
		}
	case jfif.Sub422:
		ypw := f.Planes[0].PlaneW()
		cpw := f.Planes[1].PlaneW()
		yP, cbP, crP := f.Samples[0], f.Samples[1], f.Samples[2]
		cbUp := make([]byte, 2*cpw)
		crUp := make([]byte, 2*cpw)
		for y := r0; y < r1; y++ {
			color.UpsampleRowH2V1Fancy(cbP[y*cpw:y*cpw+cpw], cbUp)
			color.UpsampleRowH2V1Fancy(crP[y*cpw:y*cpw+cpw], crUp)
			yr := yP[y*ypw:]
			dst := out.Pix[y*w*3:]
			for x := 0; x < w; x++ {
				r, g, b := color.YCbCrToRGB(int32(yr[x]), int32(cbUp[x]), int32(crUp[x]))
				dst[x*3], dst[x*3+1], dst[x*3+2] = r, g, b
			}
		}
	case jfif.Sub420:
		ypw := f.Planes[0].PlaneW()
		cpw := f.Planes[1].PlaneW()
		yP, cbP, crP := f.Samples[0], f.Samples[1], f.Samples[2]
		cbUp := make([]byte, 2*cpw)
		crUp := make([]byte, 2*cpw)
		ch := f.Planes[1].PlaneH()
		for y := r0; y < r1; y++ {
			upsample420Row(cbP, cpw, ch, y, cbUp)
			upsample420Row(crP, cpw, ch, y, crUp)
			yr := yP[y*ypw:]
			dst := out.Pix[y*w*3:]
			for x := 0; x < w; x++ {
				r, g, b := color.YCbCrToRGB(int32(yr[x]), int32(cbUp[x]), int32(crUp[x]))
				dst[x*3], dst[x*3+1], dst[x*3+2] = r, g, b
			}
		}
	}
}

// upsample420Row produces one full-resolution chroma row (output luma row
// index y) from an h2v2 plane using the fancy triangle filter: a 3:1
// vertical blend of the two nearest chroma rows followed by the
// horizontal Algorithm 1 filter.
func upsample420Row(plane []byte, cpw, ch, y int, out []byte) {
	near := y / 2
	var far int
	if y%2 == 0 {
		far = near - 1
	} else {
		far = near + 1
	}
	if far < 0 {
		far = 0
	}
	if far >= ch {
		far = ch - 1
	}
	rn := plane[near*cpw : near*cpw+cpw]
	rf := plane[far*cpw : far*cpw+cpw]
	// Vertical 3:1 blend into 10-bit intermediate, then the horizontal
	// triangle filter on the blended row (libjpeg h2v2 fancy upsampling).
	blend := make([]int, cpw)
	for i := range blend {
		blend[i] = 3*int(rn[i]) + int(rf[i])
	}
	n := cpw
	out[0] = byte((4*blend[0] + 8) >> 4)
	if n == 1 {
		out[1] = out[0]
		return
	}
	out[1] = byte((3*blend[0] + blend[1] + 7) >> 4)
	for i := 1; i < n-1; i++ {
		c := 3 * blend[i]
		out[2*i] = byte((c + blend[i-1] + 8) >> 4)
		out[2*i+1] = byte((c + blend[i+1] + 7) >> 4)
	}
	out[2*n-2] = byte((3*blend[n-1] + blend[n-2] + 8) >> 4)
	out[2*n-1] = byte((4*blend[n-1] + 8) >> 4)
}

// ParallelPhaseScalar runs the full scalar parallel phase (dequant+IDCT,
// upsample, color conversion) for MCU rows [m0, m1).
func ParallelPhaseScalar(f *Frame, m0, m1 int, out *RGBImage) {
	for c := range f.Planes {
		IDCTRange(f, c, m0, m1)
	}
	r0, r1 := f.PixelRows(m0, m1)
	ColorConvertRange(f, r0, r1, out)
}

// DecodeScalar is the sequential reference decoder (the libjpeg analog):
// entropy decode then the scalar parallel phase, whole image.
func DecodeScalar(data []byte) (*RGBImage, error) {
	f, ed, err := PrepareDecode(data)
	if err != nil {
		return nil, err
	}
	if err := ed.DecodeAll(); err != nil {
		return nil, err
	}
	out := NewRGBImage(f.Img.Width, f.Img.Height)
	ParallelPhaseScalar(f, 0, f.MCURows, out)
	return out, nil
}

// PrepareDecode parses the stream and allocates whole-image buffers,
// returning the frame and a chunked entropy decoder positioned at row 0.
func PrepareDecode(data []byte) (*Frame, *EntropyDecoder, error) {
	im, err := jfif.Parse(data)
	if err != nil {
		return nil, nil, err
	}
	for _, c := range im.Components {
		if im.Quant[c.QuantSel] == nil {
			return nil, nil, fmt.Errorf("jpegcodec: missing quant table %d", c.QuantSel)
		}
	}
	f, err := NewFrame(im)
	if err != nil {
		return nil, nil, err
	}
	return f, NewEntropyDecoder(f), nil
}
