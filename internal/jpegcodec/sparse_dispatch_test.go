package jpegcodec

import (
	"testing"

	"hetjpeg/internal/jfif"
)

// Tests for the sparse-IDCT dispatch and the fused band pipeline: the
// decoder's fast paths must be invisible in the output.

// decodeDense decodes data with the per-block sparsity records wiped, so
// every block takes the dense fallback kernel — the dispatch-free
// reference output.
func decodeDense(t *testing.T, data []byte) *RGBImage {
	t.Helper()
	f, ed, err := PrepareDecode(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := ed.DecodeAll(); err != nil {
		t.Fatal(err)
	}
	for c := range f.NZ {
		clear(f.NZ[c])
	}
	out := NewRGBImage(f.Img.Width, f.Img.Height)
	ParallelPhaseScalar(f, 0, f.MCURows, out)
	return out
}

// TestSparseDispatchMatchesDense covers smooth (DC-heavy), mixed and
// detailed (dense) content across subsamplings and qualities: the
// dispatched decode must be byte-identical to the dense-only decode.
func TestSparseDispatchMatchesDense(t *testing.T) {
	for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub422, jfif.Sub420} {
		for _, q := range []int{35, 85, 97} {
			for _, seed := range []int64{3, 77} {
				img := makeTestImage(173, 121, seed)
				data, err := Encode(img, EncodeOptions{Quality: q, Subsampling: sub})
				if err != nil {
					t.Fatal(err)
				}
				want := decodeDense(t, data)
				got, err := DecodeScalar(data)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want.Pix {
					if got.Pix[i] != want.Pix[i] {
						t.Fatalf("%v q=%d seed=%d: pixel byte %d: dispatched %d != dense %d",
							sub, q, seed, i, got.Pix[i], want.Pix[i])
					}
				}
			}
		}
	}
}

// TestNZRecordsSparsity checks the bookkeeping against the coefficients:
// NZ must name the last nonzero zigzag index of every block.
func TestNZRecordsSparsity(t *testing.T) {
	img := makeTestImage(160, 128, 9)
	data, err := Encode(img, EncodeOptions{Quality: 80, Subsampling: jfif.Sub422})
	if err != nil {
		t.Fatal(err)
	}
	f, ed, err := PrepareDecode(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := ed.DecodeAll(); err != nil {
		t.Fatal(err)
	}
	sawSparse := false
	for c := range f.Coeff {
		p := f.Planes[c]
		for b := 0; b < p.Blocks(); b++ {
			blk := f.Coeff[c][b*64 : b*64+64]
			last := 0
			for k := 63; k > 0; k-- {
				if blk[jfif.ZigZag[k]] != 0 {
					last = k
					break
				}
			}
			if got := int(f.NZ[c][b]); got != last+1 {
				t.Fatalf("component %d block %d: NZ=%d, want %d", c, b, got, last+1)
			}
			if last == 0 {
				sawSparse = true
			}
		}
	}
	if !sawSparse {
		t.Fatal("fixture produced no DC-only blocks; sparsity paths untested")
	}
}

// TestNZSurvivesParallelRestart is the regression test that the
// restart-segment parallel entropy decoder fills the same per-block
// sparsity records as the sequential decoder.
func TestNZSurvivesParallelRestart(t *testing.T) {
	for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub420} {
		data := restartFixture(t, 200, 152, 5, sub)

		fSeq, edSeq, err := PrepareDecode(data)
		if err != nil {
			t.Fatal(err)
		}
		if err := edSeq.DecodeAll(); err != nil {
			t.Fatal(err)
		}
		fPar, _, err := PrepareDecode(data)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeAllParallelRestart(fPar, 8); err != nil {
			t.Fatal(err)
		}
		for c := range fSeq.NZ {
			for i := range fSeq.NZ[c] {
				if fSeq.NZ[c][i] != fPar.NZ[c][i] {
					t.Fatalf("%v component %d block %d: sequential NZ %d != parallel NZ %d",
						sub, c, i, fSeq.NZ[c][i], fPar.NZ[c][i])
				}
			}
		}
		// And the parallel-restart frame must render identically.
		outSeq := NewRGBImage(fSeq.Img.Width, fSeq.Img.Height)
		ParallelPhaseScalar(fSeq, 0, fSeq.MCURows, outSeq)
		outPar := NewRGBImage(fPar.Img.Width, fPar.Img.Height)
		ParallelPhaseScalar(fPar, 0, fPar.MCURows, outPar)
		for i := range outSeq.Pix {
			if outSeq.Pix[i] != outPar.Pix[i] {
				t.Fatalf("%v: pixel byte %d differs after parallel-restart decode", sub, i)
			}
		}
	}
}

// TestParallelPhaseWorkersIdentical: the intra-image worker pool must be
// byte-identical to the sequential fused pipeline for every worker
// count, subsampling and awkward geometry (seams at 4:2:0 boundaries).
func TestParallelPhaseWorkersIdentical(t *testing.T) {
	for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub422, jfif.Sub420} {
		for _, wh := range [][2]int{{48, 48}, {167, 133}, {320, 99}} {
			img := makeTestImage(wh[0], wh[1], 31)
			data, err := Encode(img, EncodeOptions{Quality: 88, Subsampling: sub})
			if err != nil {
				t.Fatal(err)
			}
			want, err := DecodeScalar(data)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, 8, 64} {
				f, ed, err := PrepareDecode(data)
				if err != nil {
					t.Fatal(err)
				}
				if err := ed.DecodeAll(); err != nil {
					t.Fatal(err)
				}
				got := NewRGBImage(f.Img.Width, f.Img.Height)
				ParallelPhaseScalarWorkers(f, 0, f.MCURows, got, workers)
				for i := range want.Pix {
					if got.Pix[i] != want.Pix[i] {
						t.Fatalf("%v %dx%d workers=%d: pixel byte %d differs",
							sub, wh[0], wh[1], workers, i)
					}
				}
			}
		}
	}
}
