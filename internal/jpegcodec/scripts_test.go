package jpegcodec

import (
	"reflect"
	"testing"
)

// TestScriptTablePinned pins the named script table: the names, their
// order, and the exact scan specs each name resolves to. The fixture
// generator (internal/imagegen) and the transcode knobs both resolve
// scripts through this table; a drift here silently changes every
// committed fixture and transcode output, so it must be deliberate.
func TestScriptTablePinned(t *testing.T) {
	wantNames := []string{"default", "spectral", "multiband", "deepsa"}
	if got := ScriptNames(); !reflect.DeepEqual(got, wantNames) {
		t.Fatalf("ScriptNames() = %v, want %v", got, wantNames)
	}

	builders := map[string]func() []ScanSpec{
		"default":   ScriptDefault,
		"spectral":  ScriptSpectralOnly,
		"multiband": ScriptMultiBand,
		"deepsa":    ScriptDeepSA,
	}
	for name, build := range builders {
		byName, ok := ScriptByName(name)
		if !ok {
			t.Fatalf("ScriptByName(%q) not found", name)
		}
		if !reflect.DeepEqual(byName, build()) {
			t.Errorf("ScriptByName(%q) differs from its exported builder", name)
		}
		if err := validateScript(byName, 3); err != nil {
			t.Errorf("script %q does not validate: %v", name, err)
		}
	}

	// Scan-count fingerprint: a change in any script's shape must show
	// up here as a deliberate edit.
	wantScans := map[string]int{"default": 10, "spectral": 4, "multiband": 10, "deepsa": 13}
	for name, want := range wantScans {
		sc, _ := ScriptByName(name)
		if len(sc) != want {
			t.Errorf("script %q has %d scans, pinned at %d", name, len(sc), want)
		}
	}
}

// TestScriptByNameDefaults covers the empty-string default and the
// unknown-name refusal, plus copy semantics (mutating a resolved script
// must not leak into the table).
func TestScriptByNameDefaults(t *testing.T) {
	def, ok := ScriptByName("")
	if !ok || !reflect.DeepEqual(def, ScriptDefault()) {
		t.Fatalf("ScriptByName(\"\") = (%v, %v), want the default script", def, ok)
	}
	if _, ok := ScriptByName("nope"); ok {
		t.Fatal("ScriptByName(\"nope\") resolved; want ok=false")
	}
	a, _ := ScriptByName("spectral")
	a[0].Ss = 42
	b, _ := ScriptByName("spectral")
	if b[0].Ss == 42 {
		t.Fatal("ScriptByName returns a shared instance; want a fresh copy per call")
	}
}
