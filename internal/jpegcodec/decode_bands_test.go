package jpegcodec

import (
	"bytes"
	"fmt"
	"testing"

	"hetjpeg/internal/jfif"
)

// bandFixture encodes a synthetic image and entropy-decodes it back to
// a frame ready for back-phase execution.
func bandFixture(t *testing.T, w, h int, sub jfif.Subsampling, seed int64) *Frame {
	t.Helper()
	data, err := Encode(makeTestImage(w, h, seed), EncodeOptions{Quality: 85, Subsampling: sub})
	if err != nil {
		t.Fatal(err)
	}
	f, ed, err := PrepareDecode(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := ed.DecodeAll(); err != nil {
		t.Fatal(err)
	}
	return f
}

// BandPlan's contract: any band decomposition, executed in any order,
// followed by FinishSeams, is byte-identical to the sequential fused
// pipeline. The batch scheduler relies on this for every decode.
func TestBandPlanIdentity(t *testing.T) {
	for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub422, jfif.Sub420} {
		for _, wh := range [][2]int{{129, 97}, {320, 243}} {
			f := bandFixture(t, wh[0], wh[1], sub, 88)
			want := NewRGBImage(f.Img.Width, f.Img.Height)
			ParallelPhaseScalar(f, 0, f.MCURows, want)

			for _, bandRows := range []int{1, 2, 3, 7, f.MCURows, f.MCURows + 5} {
				t.Run(fmt.Sprintf("%v/%dx%d/band%d", sub, wh[0], wh[1], bandRows), func(t *testing.T) {
					got := NewRGBImage(f.Img.Width, f.Img.Height)
					bp := PlanBands(f, 0, f.MCURows, bandRows)
					scratch := &ConvertScratch{}
					// Reverse order: bands must not depend on each other.
					for i := bp.Bands() - 1; i >= 0; i-- {
						bp.ExecBand(i, got, scratch)
					}
					bp.FinishSeams(got, scratch)
					if !bytes.Equal(got.Pix, want.Pix) {
						t.Fatalf("band decomposition differs from sequential pipeline")
					}
					got.Release()
				})
			}
			want.Release()
		}
	}
}

// A ConvertScratch reused across frames of different widths must keep
// producing correct rows (it only ever grows).
func TestConvertScratchReuseAcrossFrames(t *testing.T) {
	scratch := &ConvertScratch{}
	for _, wh := range [][2]int{{640, 480}, {64, 64}, {320, 240}} {
		f := bandFixture(t, wh[0], wh[1], jfif.Sub420, 17)
		want := NewRGBImage(f.Img.Width, f.Img.Height)
		ParallelPhaseScalar(f, 0, f.MCURows, want)
		got := NewRGBImage(f.Img.Width, f.Img.Height)
		bp := PlanBands(f, 0, f.MCURows, 2)
		for i := 0; i < bp.Bands(); i++ {
			bp.ExecBand(i, got, scratch)
		}
		bp.FinishSeams(got, scratch)
		if !bytes.Equal(got.Pix, want.Pix) {
			t.Fatalf("%dx%d: shared scratch corrupted output", wh[0], wh[1])
		}
		got.Release()
		want.Release()
	}
}
