package jpegcodec

import (
	"bytes"
	"testing"

	"hetjpeg/internal/jfif"
)

// testImage renders a deterministic photographic-ish texture without
// importing imagegen (which would cycle).
func testImage(w, h int, seed uint32) *RGBImage {
	img := NewRGBImage(w, h)
	s := seed
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s = s*1664525 + 1013904223
			base := byte(128 + 90*((x/16+y/16)%2) - 45)
			img.Set(x, y, base+byte(s>>24)%32, base+byte(s>>16)%32, base+byte(s>>8)%32)
		}
	}
	return img
}

var progScripts = map[string][]ScanSpec{
	"spectral":  ScriptSpectralOnly(),
	"default":   ScriptDefault(),
	"multiband": ScriptMultiBand(),
	"deepsa":    ScriptDeepSA(),
}

// TestProgressiveMatchesBaselinePixels is the strongest progressive
// correctness property available without an external decoder: a
// complete scan script transmits every bit of every quantized
// coefficient, so decoding the progressive stream must yield exactly
// the coefficients of the baseline stream of the same image — and
// therefore byte-identical RGB output.
func TestProgressiveMatchesBaselinePixels(t *testing.T) {
	for _, sub := range []jfif.Subsampling{jfif.Sub444, jfif.Sub422, jfif.Sub420} {
		for name, script := range progScripts {
			for _, ri := range []int{0, 3} {
				img := testImage(121, 87, 7)
				base, err := Encode(img, EncodeOptions{Quality: 80, Subsampling: sub, RestartInterval: ri})
				if err != nil {
					t.Fatalf("%v/%s: baseline encode: %v", sub, name, err)
				}
				prog, err := Encode(img, EncodeOptions{
					Quality: 80, Subsampling: sub, RestartInterval: ri,
					Progressive: true, Script: script,
				})
				if err != nil {
					t.Fatalf("%v/%s: progressive encode: %v", sub, name, err)
				}
				refImg, err := DecodeScalar(base)
				if err != nil {
					t.Fatalf("%v/%s: baseline decode: %v", sub, name, err)
				}
				gotImg, err := DecodeScalar(prog)
				if err != nil {
					t.Fatalf("%v/%s/ri%d: progressive decode: %v", sub, name, ri, err)
				}
				if !bytes.Equal(refImg.Pix, gotImg.Pix) {
					t.Errorf("%v/%s/ri%d: progressive pixels differ from baseline of the same image", sub, name, ri)
				}
			}
		}
	}
}

// TestProgressiveCoefficientsMatchBaseline checks the same property one
// level down: the accumulated coefficient buffers are identical, and the
// NZ sparsity watermark never under-reports a nonzero coefficient (an
// under-report would make the sparse IDCT drop energy).
func TestProgressiveCoefficientsMatchBaseline(t *testing.T) {
	img := testImage(97, 75, 21)
	base, err := Encode(img, EncodeOptions{Quality: 85, Subsampling: jfif.Sub420})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Encode(img, EncodeOptions{Quality: 85, Subsampling: jfif.Sub420, Progressive: true})
	if err != nil {
		t.Fatal(err)
	}
	fb, edb, err := PrepareDecode(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := edb.DecodeAll(); err != nil {
		t.Fatal(err)
	}
	fp, edp, err := PrepareDecode(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !fp.Img.Progressive {
		t.Fatal("progressive stream parsed as baseline")
	}
	if err := edp.DecodeAll(); err != nil {
		t.Fatal(err)
	}
	for c := range fb.Coeff {
		p := fp.Planes[c]
		// Single-component progressive scans cover the component's own
		// ceil(size/8) block grid (T.81 A.2.2); blocks that exist only as
		// MCU padding receive AC coefficients in a baseline stream but
		// not in a progressive one, and never reach visible pixels.
		// Compare where both streams carry data; padding blocks must
		// stay DC-only in the progressive frame.
		wb := (p.CompW + 7) / 8
		hb := (p.CompH + 7) / 8
		for by := 0; by < p.BlockRows; by++ {
			for bx := 0; bx < p.BlocksPerRow; bx++ {
				bi := by*p.BlocksPerRow + bx
				got := fp.Coeff[c][bi*64 : bi*64+64]
				if bx < wb && by < hb {
					want := fb.Coeff[c][bi*64 : bi*64+64]
					if !equalInt32(want, got) {
						t.Errorf("component %d block (%d,%d): coefficients differ", c, bx, by)
					}
				} else {
					for z := 1; z < 64; z++ {
						if got[jfif.ZigZag[z]] != 0 {
							t.Errorf("component %d padding block (%d,%d): AC coefficient at zigzag %d", c, bx, by, z)
						}
					}
				}
			}
		}
		// NZ must cover the true last nonzero coefficient of every block
		// (an under-report would make the sparse IDCT drop energy).
		for b := 0; b < p.Blocks(); b++ {
			last := 0
			blk := fp.Coeff[c][b*64 : b*64+64]
			for z := 1; z < 64; z++ {
				if blk[jfif.ZigZag[z]] != 0 {
					last = z
				}
			}
			if nz := int(fp.NZ[c][b]); nz < last+1 {
				t.Fatalf("component %d block %d: NZ=%d under-reports last nonzero zigzag index %d", c, b, nz, last)
			}
		}
	}
	// Per-MCU-row bit accounting must cover all scans' bits exactly.
	var fromRows int64
	for _, b := range edp.BitsPerRow {
		fromRows += b
	}
	var scanBits int64
	for _, sc := range fp.Img.Scans {
		scanBits += int64(len(sc.Data)) * 8
	}
	if len(edp.BitsPerRow) != fp.MCURows {
		t.Fatalf("BitsPerRow has %d entries, want %d", len(edp.BitsPerRow), fp.MCURows)
	}
	if fromRows <= 0 || fromRows > scanBits {
		t.Fatalf("aggregated row bits %d outside (0, %d]", fromRows, scanBits)
	}
}

// TestProgressiveTruncatedInputsError truncates a progressive stream at
// every byte boundary: every prefix must fail cleanly (parse or decode
// error), never panic, and never be mistaken for a complete image.
func TestProgressiveTruncatedInputsError(t *testing.T) {
	img := testImage(64, 48, 3)
	data, err := Encode(img, EncodeOptions{Quality: 85, Subsampling: jfif.Sub420, Progressive: true})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		f, ed, err := PrepareDecode(data[:cut])
		if err != nil {
			continue // parse already failed: fine
		}
		err = ed.DecodeAll()
		f.Release()
		if err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(data))
		}
	}
}

// TestProgressiveDiscardDecode exercises the profiling path: a
// geometry-only frame entropy-decodes a progressive stream, discarding
// coefficients but reporting per-row bits.
func TestProgressiveDiscardDecode(t *testing.T) {
	img := testImage(80, 64, 11)
	data, err := Encode(img, EncodeOptions{Quality: 85, Subsampling: jfif.Sub422, Progressive: true})
	if err != nil {
		t.Fatal(err)
	}
	im, err := parseFor(t, data)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFrameGeometry(im)
	if err != nil {
		t.Fatal(err)
	}
	ed := NewEntropyDecoderDiscard(f)
	if err := ed.DecodeAll(); err != nil {
		t.Fatal(err)
	}
	if len(ed.BitsPerRow) != f.MCURows {
		t.Fatalf("BitsPerRow has %d entries, want %d", len(ed.BitsPerRow), f.MCURows)
	}
	if ed.EntropyBitsTotal() <= 0 {
		t.Fatal("no bits recorded")
	}
}

func parseFor(t *testing.T, data []byte) (*jfif.Image, error) {
	t.Helper()
	return jfif.Parse(data)
}

// TestProgressiveScriptValidation rejects malformed scan scripts at
// encode time.
func TestProgressiveScriptValidation(t *testing.T) {
	img := testImage(32, 32, 1)
	bad := [][]ScanSpec{
		{},                                              // empty
		{{Comps: []int{0, 1}, Ss: 1, Se: 5}},            // interleaved AC
		{{Comps: []int{0}, Ss: 0, Se: 5}},               // DC scan with Se != 0
		{{Comps: []int{0}, Ss: 10, Se: 5}},              // inverted band
		{{Comps: []int{0}, Ss: 1, Se: 64}},              // band out of range
		{{Comps: []int{3}, Ss: 0, Se: 0}},               // unknown component
		{{Comps: []int{0, 0, 1}, Ss: 0, Se: 0}},         // repeated component
		{{Comps: []int{0}, Ss: 1, Se: 5, Ah: 3, Al: 1}}, // Ah != Al+1
	}
	for i, script := range bad {
		if _, err := Encode(img, EncodeOptions{Progressive: true, Script: script}); err == nil {
			t.Errorf("bad script %d accepted", i)
		}
	}
}
