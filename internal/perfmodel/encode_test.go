package perfmodel

import "testing"

func TestEncodeRatesPerClassIsolation(t *testing.T) {
	var r EncodeRates
	r.At(EncodeBaseline).Observe(100)
	r.At(EncodeProgressive).Observe(900)

	if v := r.At(EncodeBaseline).Value(); v != 100 {
		t.Errorf("baseline rate = %v, want 100", v)
	}
	if v := r.At(EncodeOptimized).Value(); v != 0 {
		t.Errorf("optimized rate = %v, want 0 (unseeded)", v)
	}
	if v := r.At(EncodeProgressive).Value(); v != 900 {
		t.Errorf("progressive rate = %v, want 900", v)
	}
	if v := r.Max(); v != 900 {
		t.Errorf("Max() = %v, want 900", v)
	}

	// Seed must not override an observed value, matching OnlineRate.
	r.At(EncodeBaseline).Seed(5000)
	if v := r.At(EncodeBaseline).Value(); v != 100 {
		t.Errorf("Seed overrode observed baseline rate: %v", v)
	}

	// Out-of-range classes alias the baseline slot instead of panicking.
	if got := r.At(EncodeClass(99)).Value(); got != 100 {
		t.Errorf("out-of-range class = %v, want baseline's 100", got)
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct {
		progressive, optimize bool
		want                  EncodeClass
	}{
		{false, false, EncodeBaseline},
		{false, true, EncodeOptimized},
		{true, false, EncodeProgressive},
		// Progressive implies per-scan optimal tables, so it wins.
		{true, true, EncodeProgressive},
	}
	for _, c := range cases {
		if got := ClassFor(c.progressive, c.optimize); got != c.want {
			t.Errorf("ClassFor(%v, %v) = %v, want %v", c.progressive, c.optimize, got, c.want)
		}
	}
}
