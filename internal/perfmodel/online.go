package perfmodel

// OnlineRate is the runtime companion to the offline fit: an
// exponentially weighted moving average of a measured rate (e.g. ns per
// MCU of one pipeline stage), optionally seeded from a model
// prediction. It is the wall-clock analog of the partition package's
// Equation (16)/(17) feedback correction: start from what the fitted
// model predicts, then pull toward what the host actually measures, so
// schedulers adapt to the machine they run on instead of trusting the
// offline fit.
//
// The zero value is unseeded; Value returns 0 until the first Seed or
// Observe. OnlineRate is not goroutine-safe — callers serialize access
// (the batch scheduler updates it under its scheduling lock).
type OnlineRate struct {
	v float64
}

// onlineAlpha is the EWMA smoothing factor: each observation moves the
// estimate a quarter of the way, forgiving one noisy band without going
// numb to real drift (GC pauses, frequency scaling, corpus shifts).
const onlineAlpha = 0.25

// Seed primes an unseeded rate with a model prediction; once a value
// exists (seeded or observed), Seed is a no-op.
func (r *OnlineRate) Seed(x float64) {
	if r.v == 0 && x > 0 {
		r.v = x
	}
}

// Observe folds one measurement into the estimate.
func (r *OnlineRate) Observe(x float64) {
	if x <= 0 {
		return
	}
	if r.v == 0 {
		r.v = x
		return
	}
	r.v += onlineAlpha * (x - r.v)
}

// Value returns the current estimate (0 when unseeded).
func (r *OnlineRate) Value() float64 { return r.v }

// ScaledRates keys an OnlineRate by decode scale: the back-phase cost
// per MCU differs by more than an order of magnitude between a full
// decode and a DC-only 1/8 decode, so folding them into one EWMA would
// let a burst of thumbnail traffic wreck the full-size estimate (and
// vice versa). Each supported scale (1, 2, 4, 8) learns independently;
// the batch scheduler seeds each from the offline fit evaluated at that
// scale's output geometry and corrects it with measurements.
//
// Like OnlineRate, the zero value is ready to use and access must be
// serialized by the caller.
type ScaledRates struct {
	rates [4]OnlineRate
}

// scaleIdx maps a scale denominator to its slot; unknown values share
// the full-size slot (they cannot occur for validated decodes).
func scaleIdx(scale int) int {
	switch scale {
	case 2:
		return 1
	case 4:
		return 2
	case 8:
		return 3
	}
	return 0
}

// At returns the rate for a scale denominator (1, 2, 4 or 8).
func (r *ScaledRates) At(scale int) *OnlineRate { return &r.rates[scaleIdx(scale)] }

// Max returns the largest current estimate across scales (0 when all
// are unseeded) — the conservative choice when sizing shared resources
// for mixed-scale traffic.
func (r *ScaledRates) Max() float64 {
	var m float64
	for i := range r.rates {
		if v := r.rates[i].Value(); v > m {
			m = v
		}
	}
	return m
}
