package perfmodel

// OnlineRate is the runtime companion to the offline fit: an
// exponentially weighted moving average of a measured rate (e.g. ns per
// MCU of one pipeline stage), optionally seeded from a model
// prediction. It is the wall-clock analog of the partition package's
// Equation (16)/(17) feedback correction: start from what the fitted
// model predicts, then pull toward what the host actually measures, so
// schedulers adapt to the machine they run on instead of trusting the
// offline fit.
//
// The zero value is unseeded; Value returns 0 until the first Seed or
// Observe. OnlineRate is not goroutine-safe — callers serialize access
// (the batch scheduler updates it under its scheduling lock).
type OnlineRate struct {
	v float64
}

// onlineAlpha is the EWMA smoothing factor: each observation moves the
// estimate a quarter of the way, forgiving one noisy band without going
// numb to real drift (GC pauses, frequency scaling, corpus shifts).
const onlineAlpha = 0.25

// Seed primes an unseeded rate with a model prediction; once a value
// exists (seeded or observed), Seed is a no-op.
func (r *OnlineRate) Seed(x float64) {
	if r.v == 0 && x > 0 {
		r.v = x
	}
}

// Observe folds one measurement into the estimate.
func (r *OnlineRate) Observe(x float64) {
	if x <= 0 {
		return
	}
	if r.v == 0 {
		r.v = x
		return
	}
	r.v += onlineAlpha * (x - r.v)
}

// Value returns the current estimate (0 when unseeded).
func (r *OnlineRate) Value() float64 { return r.v }
