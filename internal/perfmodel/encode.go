package perfmodel

// EncodeClass names the encoder configuration a rate observation
// belongs to. The three classes cost very differently per MCU: the
// baseline single-pass emitter, the two-pass optimal-Huffman emitter
// (statistics pass plus emission pass), and the progressive emitter
// (two passes per scan over a multi-scan script), so one EWMA across
// them would whipsaw whenever traffic shifts between output formats.
type EncodeClass int

const (
	// EncodeBaseline is a single statistics-free pass with the Annex K
	// default tables.
	EncodeBaseline EncodeClass = iota
	// EncodeOptimized adds the optimal-Huffman statistics pass.
	EncodeOptimized
	// EncodeProgressive runs two passes per scan of the script.
	EncodeProgressive
	numEncodeClasses
)

// String returns the class's stable label ("baseline", "optimized",
// "progressive"), the spelling metrics and logs use.
func (c EncodeClass) String() string {
	switch c {
	case EncodeOptimized:
		return "optimized"
	case EncodeProgressive:
		return "progressive"
	}
	return "baseline"
}

// EncodeClasses lists the classes in slot order.
func EncodeClasses() []EncodeClass {
	return []EncodeClass{EncodeBaseline, EncodeOptimized, EncodeProgressive}
}

// encodeClassIdx maps a class to its slot; out-of-range values share
// the baseline slot (they cannot occur for validated transcodes).
func encodeClassIdx(c EncodeClass) int {
	if c < 0 || c >= numEncodeClasses {
		return int(EncodeBaseline)
	}
	return int(c)
}

// EncodeRates keys an OnlineRate (ns per output MCU of the re-encode
// stage) by encoder class. It is the encode-side mirror of ScaledRates:
// the transcode pipeline seeds each class from a calibration encode and
// corrects it with per-request measurements, and imaged prices
// Retry-After for /transcode from the learned values.
//
// Like OnlineRate, the zero value is ready to use and access must be
// serialized by the caller.
type EncodeRates struct {
	rates [numEncodeClasses]OnlineRate
}

// At returns the rate for an encoder class.
func (r *EncodeRates) At(c EncodeClass) *OnlineRate {
	return &r.rates[encodeClassIdx(c)]
}

// Max returns the largest current estimate across classes (0 when all
// are unseeded) — the conservative choice when pricing mixed traffic.
func (r *EncodeRates) Max() float64 {
	var m float64
	for i := range r.rates {
		if v := r.rates[i].Value(); v > m {
			m = v
		}
	}
	return m
}

// ClassFor maps encoder knobs to the rate class they are billed under.
func ClassFor(progressive, optimize bool) EncodeClass {
	switch {
	case progressive:
		return EncodeProgressive
	case optimize:
		return EncodeOptimized
	}
	return EncodeBaseline
}
