package perfmodel

import (
	"math"
	"path/filepath"
	"testing"

	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/kernels"
	"hetjpeg/internal/platform"
)

func quickProfiles(t testing.TB, sub jfif.Subsampling) []*ItemProfile {
	t.Helper()
	items, err := imagegen.Build(imagegen.CorpusOptions{
		Widths:   []int{96, 256, 512},
		Heights:  []int{96, 256, 512},
		Details:  []float64{0.1, 0.6, 1.0},
		Sub:      sub,
		Quality:  85,
		SeedBase: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Summarize(items)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestSummarizeItem(t *testing.T) {
	ps := quickProfiles(t, jfif.Sub422)
	for _, p := range ps {
		if p.Density <= 0 {
			t.Fatalf("density %v", p.Density)
		}
		if len(p.BitsPerRow) != p.MCURows {
			t.Fatalf("bits rows %d != MCU rows %d", len(p.BitsPerRow), p.MCURows)
		}
		var total int64
		for _, b := range p.BitsPerRow {
			if b <= 0 {
				t.Fatal("non-positive row bits")
			}
			total += b
		}
		// The entropy segment dominates the file: decoded bits should be
		// a large fraction of the density estimate.
		estBits := p.Density * float64(p.W*p.H) * 8
		if float64(total) < 0.5*estBits || float64(total) > 1.05*estBits {
			t.Fatalf("decoded bits %d vs file-size estimate %.0f", total, estBits)
		}
	}
}

func TestFitPredictsHeldOutImages(t *testing.T) {
	spec := platform.GTX560()
	train := quickProfiles(t, jfif.Sub422)
	m, err := Fit(spec, train)
	if err != nil {
		t.Fatal(err)
	}
	sm := m.ForSub(jfif.Sub422)
	if sm == nil {
		t.Fatal("no 4:2:2 sub-model")
	}
	// Held-out sizes (not on the training grid).
	held, err := imagegen.Build(imagegen.CorpusOptions{
		Widths:   []int{384},
		Heights:  []int{320},
		Details:  []float64{0.4, 0.8},
		Sub:      jfif.Sub422,
		Quality:  85,
		SeedBase: 9999,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range held {
		p, err := SummarizeItem(it)
		if err != nil {
			t.Fatal(err)
		}
		me := MeasureParallel(spec, p)
		predCPU := sm.PCPU.Eval(float64(p.W), float64(p.H))
		predGPU := sm.PGPU.Eval(float64(p.W), float64(p.H))
		predHuff := sm.THuff(float64(p.W), float64(p.H), p.Density)
		if relErr(predCPU, me.PCPU) > 0.10 {
			t.Errorf("%s: PCPU predicted %.0f measured %.0f", it.Name, predCPU, me.PCPU)
		}
		if relErr(predGPU, me.PGPU) > 0.10 {
			t.Errorf("%s: PGPU predicted %.0f measured %.0f", it.Name, predGPU, me.PGPU)
		}
		if relErr(predHuff, me.THuff) > 0.25 {
			t.Errorf("%s: THuff predicted %.0f measured %.0f", it.Name, predHuff, me.THuff)
		}
	}
}

func relErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	spec := platform.GT430()
	train := quickProfiles(t, jfif.Sub444)
	m, err := Fit(spec, train)
	if err != nil {
		t.Fatal(err)
	}
	m.ChunkRows = 17
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Platform != m.Platform || m2.ChunkRows != 17 {
		t.Fatalf("round trip lost metadata: %+v", m2)
	}
	sm, sm2 := m.ForSub(jfif.Sub444), m2.ForSub(jfif.Sub444)
	if sm2 == nil {
		t.Fatal("sub-model lost")
	}
	w, h := 333.0, 257.0
	if relErr(sm2.PCPU.Eval(w, h), sm.PCPU.Eval(w, h)) > 1e-12 {
		t.Fatal("PCPU changed across save/load")
	}
	if relErr(sm2.HuffPerPixel.Eval(0.2), sm.HuffPerPixel.Eval(0.2)) > 1e-12 {
		t.Fatal("Huffman fit changed across save/load")
	}
}

func TestSelectChunkRowsPrefersModerateChunks(t *testing.T) {
	spec := platform.GTX560()
	items, err := imagegen.SizeSweep(jfif.Sub422, 0.6, [][2]int{{1024, 1024}, {1536, 1024}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Summarize(items)
	if err != nil {
		t.Fatal(err)
	}
	rows := SelectChunkRows(spec, ps, nil)
	if rows < 2 || rows > 128 {
		t.Fatalf("selected chunk size %d outside sane range", rows)
	}
	// One-row chunks must not win: launch overhead dominates.
	one := simulatePipelined(spec, ps[0], 1)
	best := simulatePipelined(spec, ps[0], rows)
	if one < best {
		t.Fatalf("1-row chunks (%.0f) beat selected %d rows (%.0f)", one, rows, best)
	}
}

func TestHuffmanFitIsMonotoneInDensity(t *testing.T) {
	spec := platform.GTX680()
	train := quickProfiles(t, jfif.Sub444)
	m, err := Fit(spec, train)
	if err != nil {
		t.Fatal(err)
	}
	sm := m.ForSub(jfif.Sub444)
	// Monotonicity is only guaranteed within the fitted density range
	// (polynomials extrapolate poorly — the Section 5.1 caveat).
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range train {
		lo = math.Min(lo, p.Density)
		hi = math.Max(hi, p.Density)
	}
	// The scatter in the density estimate (file headers inflate d for
	// small images, exactly as in the paper's Figure 7) permits local
	// wiggles; require positivity across the range and a clearly
	// increasing overall trend.
	for i := 0; i <= 20; i++ {
		d := lo + (hi-lo)*float64(i)/20
		if v := sm.HuffPerPixel.Eval(d); v <= 0 {
			t.Fatalf("Huffman rate non-positive at density %.3f: %v", d, v)
		}
	}
	vLo, vHi := sm.HuffPerPixel.Eval(lo), sm.HuffPerPixel.Eval(hi)
	if vHi < 1.5*vLo {
		t.Fatalf("Huffman rate trend too flat: %.3f at d=%.3f vs %.3f at d=%.3f", vLo, lo, vHi, hi)
	}
}

func TestSelectWorkGroupBlocks(t *testing.T) {
	spec := platform.GTX560()
	items, err := imagegen.SizeSweep(jfif.Sub422, 0.5, [][2]int{{512, 512}}, 6)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Summarize(items)
	if err != nil {
		t.Fatal(err)
	}
	gb := SelectWorkGroupBlocks(spec, ps, nil)
	if gb < 4 || gb > 64 {
		t.Fatalf("selected work-group size %d outside sweep range", gb)
	}
	// The sweep must be a real optimization: the chosen size's cost is
	// minimal among candidates.
	costFor := func(n int) float64 {
		trial := *spec
		trial.WorkGroupBlocks = n
		var total float64
		for _, r := range kernels.CostPlan(&trial, ps[0].Frame, 0, ps[0].MCURows, -1, -1, true) {
			total += r.Ns
		}
		return total
	}
	for _, c := range []int{4, 8, 16, 32, 64} {
		if costFor(c) < costFor(gb)-1e-9 {
			t.Fatalf("candidate %d beats selected %d", c, gb)
		}
	}
}
