package perfmodel

import (
	"sync"

	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/platform"
)

var (
	cacheMu sync.Mutex
	cache   = map[string]*Model{}
)

// Default returns the full training-corpus model for spec, training it on
// first use and caching it per platform for the remainder of the process
// (profiling is a once-per-machine offline step in the paper).
func Default(spec *platform.Spec) (*Model, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if m, ok := cache["full/"+spec.Name]; ok {
		return m, nil
	}
	m, err := Train(spec)
	if err != nil {
		return nil, err
	}
	cache["full/"+spec.Name] = m
	return m, nil
}

// TrainQuick fits a reduced-corpus model, for tests that need a model but
// not its full accuracy. Cached like Default.
func TrainQuick(spec *platform.Spec) (*Model, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if m, ok := cache["quick/"+spec.Name]; ok {
		return m, nil
	}
	var profiles []*ItemProfile
	for _, sub := range []jfif.Subsampling{jfif.Sub422, jfif.Sub444, jfif.Sub420} {
		opts := imagegen.CorpusOptions{
			Widths:   []int{64, 192, 448, 704},
			Heights:  []int{64, 192, 448, 704},
			Details:  []float64{0.1, 0.6, 1.0},
			Sub:      sub,
			Quality:  85,
			SeedBase: 1000,
		}
		items, err := imagegen.Build(opts)
		if err != nil {
			return nil, err
		}
		ps, err := Summarize(items)
		if err != nil {
			return nil, err
		}
		profiles = append(profiles, ps...)
	}
	m, err := Fit(spec, profiles)
	if err != nil {
		return nil, err
	}
	cache["quick/"+spec.Name] = m
	return m, nil
}
