// Package perfmodel implements Section 5.1: the offline profiling step
// that characterizes a CPU-GPU combination, multivariate polynomial
// regression (degree <= 7, AIC-selected, Horner form) over the profiled
// timings, and the chunk-size selection of Section 4.5. The fitted model
// predicts, from image width, height and entropy density alone:
//
//	THuffPerPixel(d)   - sequential Huffman decode rate (ns/pixel)
//	PCPU(w, h)         - CPU (SIMD) parallel-phase time
//	PCPUScalar(w, h)   - CPU scalar parallel-phase time
//	PGPU(w, h)         - GPU parallel-phase time incl. transfers
//	TDisp(w, h)        - CPU-side dispatch overhead
package perfmodel

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/jpegcodec"
	"hetjpeg/internal/kernels"
	"hetjpeg/internal/mathx"
	"hetjpeg/internal/platform"
)

// MaxDegree is the paper's regression degree bound.
const MaxDegree = 7

// SubModel holds the fitted forms for one chroma subsampling.
type SubModel struct {
	HuffPerPixel mathx.Poly1 `json:"huffPerPixel"` // ns/pixel as f(density)
	PCPU         mathx.Poly2 `json:"pcpu"`         // SIMD parallel phase, ns
	PCPUScalar   mathx.Poly2 `json:"pcpuScalar"`   // scalar parallel phase, ns
	PGPU         mathx.Poly2 `json:"pgpu"`         // GPU parallel phase incl. transfers, ns
	TDisp        mathx.Poly2 `json:"tdisp"`        // dispatch overhead, ns
}

// THuff predicts whole-image Huffman time (Equation 4).
func (m *SubModel) THuff(w, h, d float64) float64 {
	return m.HuffPerPixel.Eval(d) * w * h
}

// Model is the per-platform performance model.
type Model struct {
	Platform  string               `json:"platform"`
	ChunkRows int                  `json:"chunkRows"` // pipelining chunk size in MCU rows
	Subs      map[string]*SubModel `json:"subs"`      // keyed by jfif.Subsampling.String()
}

// ForSub returns the sub-model for a subsampling, or nil.
func (m *Model) ForSub(sub jfif.Subsampling) *SubModel {
	return m.Subs[sub.String()]
}

// ItemProfile is the platform-independent summary of one training image.
type ItemProfile struct {
	W, H       int
	Sub        jfif.Subsampling
	Density    float64
	BitsPerRow []int64
	Blocks     int // total coefficient blocks
	MCURows    int
	Frame      *jpegcodec.Frame // geometry only
}

// SummarizeItem parses and entropy-decodes one corpus item (discarding
// coefficients), collecting everything platform-specific profiling needs.
func SummarizeItem(it imagegen.Item) (*ItemProfile, error) {
	im, err := jfif.Parse(it.Data)
	if err != nil {
		return nil, err
	}
	f, err := jpegcodec.NewFrameGeometry(im)
	if err != nil {
		return nil, err
	}
	ed := jpegcodec.NewEntropyDecoderDiscard(f)
	if err := ed.DecodeAll(); err != nil {
		return nil, err
	}
	return &ItemProfile{
		W:          im.Width,
		H:          im.Height,
		Sub:        f.Sub,
		Density:    im.EntropyDensity(),
		BitsPerRow: ed.BitsPerRow,
		Blocks:     f.TotalBlocks(),
		MCURows:    f.MCURows,
		Frame:      f,
	}, nil
}

// Summarize summarizes a whole corpus.
func Summarize(items []imagegen.Item) ([]*ItemProfile, error) {
	out := make([]*ItemProfile, 0, len(items))
	for _, it := range items {
		p, err := SummarizeItem(it)
		if err != nil {
			return nil, fmt.Errorf("perfmodel: %s: %w", it.Name, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// measure evaluates the calibrated cost model for one profiled image on
// one platform — the virtual equivalent of running the instrumented
// decoder of Section 5.1.
type measurement struct {
	w, h, d    float64
	tHuffPerPx float64
	pCPU       float64
	pCPUScalar float64
	pGPU       float64
	tDisp      float64
}

func measure(spec *platform.Spec, p *ItemProfile) measurement {
	var bits int64
	for _, b := range p.BitsPerRow {
		bits += b
	}
	tHuff := spec.HuffmanNs(bits, p.Blocks)
	pixels := p.W * p.H
	upsampled := p.Sub == jfif.Sub422 || p.Sub == jfif.Sub420

	recs := kernels.CostPlan(spec, p.Frame, 0, p.MCURows, -1, -1, true)
	var pGPU float64
	for _, r := range recs {
		pGPU += r.Ns
	}
	return measurement{
		w:          float64(p.W),
		h:          float64(p.H),
		d:          p.Density,
		tHuffPerPx: tHuff / float64(pixels),
		pCPU:       spec.CPUParallelNs(true, p.Blocks, pixels, p.H, upsampled),
		pCPUScalar: spec.CPUParallelNs(false, p.Blocks, pixels, p.H, upsampled),
		pGPU:       pGPU,
		tDisp:      spec.DispatchNs(p.Frame.CoeffBytes(0, p.MCURows)),
	}
}

// Fit profiles the training corpus on one platform and fits the model.
// Profiles must contain at least one subsampling; each subsampling is
// fitted independently (the paper trains 4:2:2 and 4:4:4 separately).
func Fit(spec *platform.Spec, profiles []*ItemProfile) (*Model, error) {
	bySub := make(map[string][]*ItemProfile)
	for _, p := range profiles {
		key := p.Sub.String()
		bySub[key] = append(bySub[key], p)
	}
	m := &Model{Platform: spec.Name, ChunkRows: spec.DefaultChunkRows, Subs: make(map[string]*SubModel)}
	for key, ps := range bySub {
		sm, err := fitSub(spec, ps)
		if err != nil {
			return nil, fmt.Errorf("perfmodel: fitting %s: %w", key, err)
		}
		m.Subs[key] = sm
	}
	return m, nil
}

func fitSub(spec *platform.Spec, ps []*ItemProfile) (*SubModel, error) {
	n := len(ps)
	ws := make([]float64, n)
	hs := make([]float64, n)
	ds := make([]float64, n)
	huff := make([]float64, n)
	pcpu := make([]float64, n)
	pcpuS := make([]float64, n)
	pgpu := make([]float64, n)
	disp := make([]float64, n)
	for i, p := range ps {
		me := measure(spec, p)
		ws[i], hs[i], ds[i] = me.w, me.h, me.d
		huff[i] = me.tHuffPerPx
		pcpu[i] = me.pCPU
		pcpuS[i] = me.pCPUScalar
		pgpu[i] = me.pGPU
		disp[i] = me.tDisp
	}
	var sm SubModel
	var err error
	// Bound the bivariate degree by sample count as well as MaxDegree.
	maxDeg2 := MaxDegree
	for maxDeg2 > 1 && mathx.NumTerms2(maxDeg2) > n/2 {
		maxDeg2--
	}
	if sm.HuffPerPixel, err = mathx.FitPoly1AIC(ds, huff, MaxDegree); err != nil {
		return nil, fmt.Errorf("huffman fit: %w", err)
	}
	if sm.PCPU, err = mathx.FitPoly2AIC(ws, hs, pcpu, maxDeg2); err != nil {
		return nil, fmt.Errorf("pcpu fit: %w", err)
	}
	if sm.PCPUScalar, err = mathx.FitPoly2AIC(ws, hs, pcpuS, maxDeg2); err != nil {
		return nil, fmt.Errorf("pcpu scalar fit: %w", err)
	}
	if sm.PGPU, err = mathx.FitPoly2AIC(ws, hs, pgpu, maxDeg2); err != nil {
		return nil, fmt.Errorf("pgpu fit: %w", err)
	}
	if sm.TDisp, err = mathx.FitPoly2AIC(ws, hs, disp, maxDeg2); err != nil {
		return nil, fmt.Errorf("tdisp fit: %w", err)
	}
	return &sm, nil
}

// SelectChunkRows implements the Section 4.5 chunk-size profiling: for
// each large profiled image, sweep chunk sizes from the full height down
// to one MCU row, simulate the pipelined GPU execution in virtual time,
// and keep the best size per image. The final choice is the largest size
// on the best list (guarding GPU utilization).
func SelectChunkRows(spec *platform.Spec, profiles []*ItemProfile, candidates []int) int {
	if len(candidates) == 0 {
		candidates = []int{1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128}
	}
	best := 0
	for _, p := range profiles {
		bestNs := 0.0
		bestRows := 0
		for _, c := range candidates {
			if c < 1 || c > p.MCURows {
				continue
			}
			ns := simulatePipelined(spec, p, c)
			if bestRows == 0 || ns < bestNs {
				bestNs, bestRows = ns, c
			}
		}
		if bestRows > best {
			best = bestRows
		}
	}
	if best == 0 {
		best = spec.DefaultChunkRows
	}
	return best
}

// simulatePipelined computes the virtual makespan of pipelined GPU
// execution (Figure 5b) for one profiled image and chunk size.
func simulatePipelined(spec *platform.Spec, p *ItemProfile, chunkRows int) float64 {
	blocksPerRow := p.Blocks / p.MCURows
	cpu, gpu := 0.0, 0.0
	for m0 := 0; m0 < p.MCURows; m0 += chunkRows {
		m1 := m0 + chunkRows
		if m1 > p.MCURows {
			m1 = p.MCURows
		}
		var bits int64
		for _, b := range p.BitsPerRow[m0:m1] {
			bits += b
		}
		cpu += spec.HuffmanNs(bits, (m1-m0)*blocksPerRow)
		cpu += spec.DispatchNs(p.Frame.CoeffBytes(m0, m1))
		var kns float64
		for _, r := range kernels.CostPlan(spec, p.Frame, m0, m1, -1, -1, true) {
			kns += r.Ns
		}
		// The chunk's device work starts when both the queue is free and
		// the CPU has dispatched it.
		if cpu > gpu {
			gpu = cpu
		}
		gpu += kns
	}
	if gpu > cpu {
		return gpu
	}
	return cpu
}

// Save writes the model as JSON.
func (m *Model) Save(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a model saved by Save.
func Load(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

var (
	trainProfilesOnce sync.Once
	trainProfiles     []*ItemProfile
	trainProfilesErr  error
)

// defaultTrainingProfiles summarizes the default training corpora once
// per process: image summaries (geometry, per-row entropy bits) are
// platform-independent, so all three machines share them.
func defaultTrainingProfiles() ([]*ItemProfile, error) {
	trainProfilesOnce.Do(func() {
		for _, sub := range []jfif.Subsampling{jfif.Sub422, jfif.Sub444, jfif.Sub420} {
			items, err := imagegen.Build(imagegen.DefaultTraining(sub))
			if err != nil {
				trainProfilesErr = err
				return
			}
			ps, err := Summarize(items)
			if err != nil {
				trainProfilesErr = err
				return
			}
			trainProfiles = append(trainProfiles, ps...)
		}
	})
	return trainProfiles, trainProfilesErr
}

// Train builds the default training corpora (both subsamplings), profiles
// them, fits the model for spec and selects the chunk size.
func Train(spec *platform.Spec) (*Model, error) {
	profiles, err := defaultTrainingProfiles()
	if err != nil {
		return nil, err
	}
	m, err := Fit(spec, profiles)
	if err != nil {
		return nil, err
	}
	// Chunk-size profiling on the largest training images.
	var large []*ItemProfile
	for _, p := range profiles {
		if p.W*p.H >= 512*512 {
			large = append(large, p)
		}
	}
	m.ChunkRows = SelectChunkRows(spec, large, nil)
	return m, nil
}

// ParallelMeasurement exposes the profiled virtual timings of one image
// on one platform (used by the harness for Figures 6 and 7).
type ParallelMeasurement struct {
	THuff      float64 // whole-image Huffman time, ns
	PCPU       float64 // SIMD parallel phase, ns
	PCPUScalar float64 // scalar parallel phase, ns
	PGPU       float64 // GPU parallel phase incl. transfers, ns
	TDisp      float64 // dispatch overhead, ns
}

// MeasureParallel evaluates the calibrated cost model for one profiled
// image.
func MeasureParallel(spec *platform.Spec, p *ItemProfile) ParallelMeasurement {
	me := measure(spec, p)
	return ParallelMeasurement{
		THuff:      me.tHuffPerPx * float64(p.W*p.H),
		PCPU:       me.pCPU,
		PCPUScalar: me.pCPUScalar,
		PGPU:       me.pGPU,
		TDisp:      me.tDisp,
	}
}

// SelectWorkGroupBlocks implements the Section 5.1 work-group sweep:
// while profiling GPU execution, work-group sizes are alternated from 4
// MCUs to 32 MCUs and the size minimizing total kernel cost over the
// profiled images is kept for the platform.
func SelectWorkGroupBlocks(spec *platform.Spec, profiles []*ItemProfile, candidates []int) int {
	if len(candidates) == 0 {
		candidates = []int{4, 8, 16, 32, 64}
	}
	best, bestNs := spec.WorkGroupBlocks, 0.0
	first := true
	for _, gb := range candidates {
		if gb <= 0 {
			continue
		}
		trial := *spec
		trial.WorkGroupBlocks = gb
		var total float64
		for _, p := range profiles {
			for _, r := range kernels.CostPlan(&trial, p.Frame, 0, p.MCURows, -1, -1, true) {
				total += r.Ns
			}
		}
		if first || total < bestNs {
			best, bestNs, first = gb, total, false
		}
	}
	return best
}
