package faultgen

import (
	"bytes"
	"testing"

	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/jpegcodec"
)

func testStream(t *testing.T, ri int, progressive bool) []byte {
	t.Helper()
	img := imagegen.Generate(imagegen.Scene{Seed: 77, Detail: 0.6}, 96, 80)
	defer img.Release()
	data, err := jpegcodec.Encode(img, jpegcodec.EncodeOptions{
		Quality:         85,
		Subsampling:     jfif.Sub420,
		RestartInterval: ri,
		Progressive:     progressive,
	})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return data
}

func TestEntropySpans(t *testing.T) {
	base := testStream(t, 4, false)
	spans := EntropySpans(base)
	if len(spans) != 1 {
		t.Fatalf("baseline stream: got %d spans, want 1", len(spans))
	}
	if spans[0].Start <= 0 || spans[0].End <= spans[0].Start || spans[0].End > len(base) {
		t.Fatalf("bad span %+v for stream of %d bytes", spans[0], len(base))
	}
	// The span must contain the restart markers and no scan headers.
	if n := len(restartMarkerOffsets(base, spans[0])); n == 0 {
		t.Fatalf("no restart markers inside the entropy span")
	}

	prog := testStream(t, 0, true)
	pspans := EntropySpans(prog)
	if len(pspans) < 2 {
		t.Fatalf("progressive stream: got %d spans, want one per scan (>= 2)", len(pspans))
	}
	for i := 1; i < len(pspans); i++ {
		if pspans[i].Start < pspans[i-1].End {
			t.Fatalf("spans overlap: %+v then %+v", pspans[i-1], pspans[i])
		}
	}
}

func TestGeneratorsDeterministicAndDistinct(t *testing.T) {
	data := testStream(t, 4, false)
	span := EntropySpans(data)[0]

	a := BitFlips(data, span, 16, 12345)
	b := BitFlips(data, span, 16, 12345)
	if len(a) != 16 {
		t.Fatalf("BitFlips returned %d faults, want 16", len(a))
	}
	for i := range a {
		if a[i].Name != b[i].Name || !bytes.Equal(a[i].Data, b[i].Data) {
			t.Fatalf("BitFlips not deterministic at %d", i)
		}
		if bytes.Equal(a[i].Data, data) {
			t.Fatalf("fault %s did not change the stream", a[i].Name)
		}
	}

	tr := Truncations(data, span.Start, 64)
	if len(tr) == 0 {
		t.Fatal("Truncations produced nothing")
	}
	for _, f := range tr {
		if len(f.Data) >= len(data) {
			t.Fatalf("%s: not shorter than the original", f.Name)
		}
	}

	rst := RSTMutations(data, span)
	if len(rst) == 0 {
		t.Fatal("RSTMutations produced nothing for a restart-interval stream")
	}
	noRST := testStream(t, 0, false)
	if s := EntropySpans(noRST); len(s) != 1 {
		t.Fatalf("marker-free stream: got %d spans, want 1", len(s))
	} else if g := RSTMutations(noRST, s[0]); len(g) != 0 {
		t.Fatalf("RSTMutations on a marker-free stream produced %d faults", len(g))
	}

	lc := LengthCorruptions(data)
	if len(lc) < 4 {
		t.Fatalf("LengthCorruptions produced only %d faults", len(lc))
	}
}
