// Package faultgen deterministically corrupts JPEG streams for the
// fault-injection conformance gate: truncations at every byte, bit
// flips inside entropy-coded segments, dropped / duplicated / renumbered
// restart markers, and corrupted marker segment lengths. Every
// generator is a pure function of its inputs (a seeded xorshift
// generator supplies "randomness"), so a failing variant reproduces
// from its name alone.
package faultgen

import "fmt"

// Fault is one corrupted variant of a stream.
type Fault struct {
	Name string
	Data []byte
}

// xorshift64 is the deterministic bit source for the generators.
func xorshift64(s uint64) uint64 {
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	return s
}

// clone copies data so faults never alias the original or each other.
func clone(data []byte) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	return out
}

// Span is a half-open byte range [Start, End) of a stream.
type Span struct{ Start, End int }

// EntropySpans walks the marker structure and returns the entropy-coded
// byte range of every scan: from just past each SOS header to the next
// non-RST marker. A malformed container yields whatever spans were
// found before the walk lost its footing — good enough for a fault
// generator, which only needs plausible targets.
func EntropySpans(data []byte) []Span {
	var spans []Span
	i := 2 // past SOI
	for i+3 < len(data) {
		if data[i] != 0xFF {
			return spans
		}
		m := data[i+1]
		if m == 0xD8 || m == 0x01 || (m >= 0xD0 && m <= 0xD7) {
			i += 2 // parameterless markers
			continue
		}
		if m == 0xD9 {
			return spans
		}
		seglen := int(data[i+2])<<8 | int(data[i+3])
		if seglen < 2 || i+2+seglen > len(data) {
			return spans
		}
		if m != 0xDA {
			i += 2 + seglen
			continue
		}
		// SOS: scan entropy bytes until the next real marker.
		start := i + 2 + seglen
		j := start
		for j+1 < len(data) {
			if data[j] != 0xFF {
				j++
				continue
			}
			nxt := data[j+1]
			if nxt == 0x00 || nxt == 0xFF || (nxt >= 0xD0 && nxt <= 0xD7) {
				j += 2
				if nxt == 0xFF {
					j--
				}
				continue
			}
			break
		}
		if j > len(data) {
			j = len(data)
		}
		spans = append(spans, Span{Start: start, End: j})
		i = j
	}
	return spans
}

// Truncations cuts the stream at every byte position in [from, len),
// stepping by stride (≥1): the "connection dropped mid-transfer" family.
func Truncations(data []byte, from, stride int) []Fault {
	if stride < 1 {
		stride = 1
	}
	if from < 0 {
		from = 0
	}
	var out []Fault
	for cut := from; cut < len(data); cut += stride {
		out = append(out, Fault{
			Name: fmt.Sprintf("trunc-%d", cut),
			Data: clone(data[:cut]),
		})
	}
	return out
}

// BitFlips produces n variants, each with one bit flipped at a
// seed-determined position inside [span.Start, span.End): the "bit rot
// in the entropy data" family. Positions landing on 0xFF or 0x00 bytes
// are kept — marker-aliasing corruption is exactly what the decoder
// must survive.
func BitFlips(data []byte, span Span, n int, seed uint64) []Fault {
	width := span.End - span.Start
	if width <= 0 {
		return nil
	}
	out := make([]Fault, 0, n)
	s := seed | 1
	for k := 0; k < n; k++ {
		s = xorshift64(s)
		pos := span.Start + int(s%uint64(width))
		s = xorshift64(s)
		bit := uint(s % 8)
		d := clone(data)
		d[pos] ^= 1 << bit
		out = append(out, Fault{
			Name: fmt.Sprintf("bitflip-%d.%d", pos, bit),
			Data: d,
		})
	}
	return out
}

// restartMarkerOffsets finds every RSTn marker inside the span,
// honouring FF00 stuffing.
func restartMarkerOffsets(data []byte, span Span) []int {
	var offs []int
	if span.End > len(data) {
		span.End = len(data)
	}
	for i := span.Start; i+1 < span.End; i++ {
		if data[i] != 0xFF {
			continue
		}
		nxt := data[i+1]
		if nxt == 0x00 {
			i++
			continue
		}
		if nxt >= 0xD0 && nxt <= 0xD7 {
			offs = append(offs, i)
			i++
		}
	}
	return offs
}

// RSTMutations corrupts the restart-marker structure of the span: for
// each marker, one variant deleting it (fusing two intervals), one
// duplicating it, and one renumbering it (breaking the modulo-8
// sequence). Streams without restart markers yield nil.
func RSTMutations(data []byte, span Span) []Fault {
	var out []Fault
	for _, off := range restartMarkerOffsets(data, span) {
		drop := make([]byte, 0, len(data)-2)
		drop = append(drop, data[:off]...)
		drop = append(drop, data[off+2:]...)
		out = append(out, Fault{Name: fmt.Sprintf("rst-drop-%d", off), Data: drop})

		dup := make([]byte, 0, len(data)+2)
		dup = append(dup, data[:off+2]...)
		dup = append(dup, data[off:]...)
		out = append(out, Fault{Name: fmt.Sprintf("rst-dup-%d", off), Data: dup})

		ren := clone(data)
		ren[off+1] = 0xD0 + (ren[off+1]-0xD0+3)%8
		out = append(out, Fault{Name: fmt.Sprintf("rst-renum-%d", off), Data: ren})
	}
	return out
}

// LengthCorruptions corrupts the 16-bit length field of every marker
// segment before (and including) each SOS header: one variant growing
// it past the end of the stream, one shrinking it to the minimum. The
// "damaged container" family — these hit the parser, not the entropy
// decoder.
func LengthCorruptions(data []byte) []Fault {
	var out []Fault
	i := 2
	for i+3 < len(data) {
		if data[i] != 0xFF {
			return out
		}
		m := data[i+1]
		if m == 0xD8 || m == 0x01 || (m >= 0xD0 && m <= 0xD7) {
			i += 2
			continue
		}
		if m == 0xD9 {
			return out
		}
		seglen := int(data[i+2])<<8 | int(data[i+3])
		if seglen < 2 || i+2+seglen > len(data) {
			return out
		}

		grow := clone(data)
		grow[i+2], grow[i+3] = 0xFF, 0xF0
		out = append(out, Fault{Name: fmt.Sprintf("len-grow-%#02x-%d", m, i), Data: grow})

		shrink := clone(data)
		shrink[i+2], shrink[i+3] = 0x00, 0x02
		out = append(out, Fault{Name: fmt.Sprintf("len-shrink-%#02x-%d", m, i), Data: shrink})

		if m == 0xDA {
			// Stop after the first scan header: corrupting later scans of
			// a progressive stream is covered by the entropy-span faults.
			return out
		}
		i += 2 + seglen
	}
	return out
}
