// Imaged is the production decode service: the band-scheduler batch
// executor behind an HTTP edge with admission control, deadline
// propagation, graceful degradation and graceful drain (see
// internal/imaged for the contract and README.md "Running imaged" for
// the status-code table).
//
//	go run ./cmd/imaged -addr :8080 &
//	curl -s --data-binary @photo.jpg 'localhost:8080/decode?scale=1/2' | jq
//	curl -s 'localhost:8080/statz' | jq
//	kill -TERM %1   # graceful drain: in-flight decodes complete
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hetjpeg"
	"hetjpeg/internal/imaged"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	platformName := flag.String("platform", "GTX 560", "simulated platform (see hetjpeg.Platforms)")
	train := flag.Bool("train", false, "fit the performance model at startup (slower start, PPS mode available)")
	workers := flag.Int("workers", 0, "decode workers (0 = GOMAXPROCS)")
	maxInflight := flag.Int("max-inflight", 0, "band scheduler in-flight image cap (0 = workers+2)")
	salvage := flag.Bool("salvage", false, "serve corrupt-but-recoverable uploads as 200 + X-Hetjpeg-Salvaged")
	maxBody := flag.Int64("max-body", 64<<20, "per-request body cap in bytes (413 past it)")
	maxQueue := flag.Int("max-queue", 0, "admission cap on concurrently admitted requests (0 = 4×workers); 429 past it")
	maxQueueBytes := flag.Int64("max-queue-bytes", 256<<20, "admission byte budget across admitted bodies; 429 past it")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "decoded-output cache budget in bytes (negative disables caching)")
	requestTimeout := flag.Duration("request-timeout", 15*time.Second, "default per-request decode deadline")
	maxTimeout := flag.Duration("max-timeout", time.Minute, "upper bound on the per-request ?timeout= override")
	degradeWatermark := flag.Float64("degrade-watermark", 0.5, "queue-occupancy fraction past which ?degrade=allow requests decode at 1/8 scale")
	overloadAfter := flag.Duration("overload-after", 5*time.Second, "continuous shedding for this long flips /readyz not-ready")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight requests")
	flag.Parse()

	if err := run(*addr, *platformName, *train, imaged.Config{
		Workers:          *workers,
		MaxInFlight:      *maxInflight,
		Salvage:          *salvage,
		MaxBody:          *maxBody,
		MaxQueue:         *maxQueue,
		MaxQueueBytes:    *maxQueueBytes,
		CacheBytes:       *cacheBytes,
		RequestTimeout:   *requestTimeout,
		MaxTimeout:       *maxTimeout,
		DegradeWatermark: *degradeWatermark,
		OverloadAfter:    *overloadAfter,
	}, *drainTimeout); err != nil {
		log.Fatal(err)
	}
}

func run(addr, platformName string, train bool, cfg imaged.Config, drainTimeout time.Duration) error {
	cfg.Spec = hetjpeg.PlatformByName(platformName)
	if cfg.Spec == nil {
		return fmt.Errorf("unknown platform %q (see hetjpeg.Platforms)", platformName)
	}
	if train {
		log.Printf("fitting performance model for %s ...", cfg.Spec.Name)
		model, err := hetjpeg.Train(cfg.Spec)
		if err != nil {
			return fmt.Errorf("train: %w", err)
		}
		cfg.Model = model
	}
	s, err := imaged.New(cfg)
	if err != nil {
		return err
	}

	srv := &http.Server{Addr: addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("imaged: serving on %s (platform %s)", addr, cfg.Spec.Name)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		// Graceful drain: stop admitting (readyz goes not-ready so the
		// balancer stops routing), let every admitted request finish,
		// then drain the decode pipeline.
		log.Printf("imaged: %v, draining (up to %v)", sig, drainTimeout)
		s.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("imaged: shutdown: %v", err)
		}
		s.Close()
		log.Printf("imaged: drained, exiting")
		return nil
	}
}
