// Command traingen writes the synthetic training or test corpus to disk
// as JPEG files (the stand-in for the paper's cropped photo corpora).
//
// Usage:
//
//	traingen -kind test -sub 422 -outdir ./corpus
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traingen: ")

	kind := flag.String("kind", "train", "train|test")
	subName := flag.String("sub", "422", "422|444|420")
	outdir := flag.String("outdir", "corpus", "output directory")
	flag.Parse()

	var sub jfif.Subsampling
	switch *subName {
	case "422":
		sub = jfif.Sub422
	case "444":
		sub = jfif.Sub444
	case "420":
		sub = jfif.Sub420
	default:
		log.Fatalf("unknown subsampling %q", *subName)
	}
	var opts imagegen.CorpusOptions
	switch *kind {
	case "train":
		opts = imagegen.DefaultTraining(sub)
	case "test":
		opts = imagegen.DefaultTest(sub)
	default:
		log.Fatalf("unknown corpus kind %q", *kind)
	}

	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		log.Fatal(err)
	}
	items, err := imagegen.Build(opts)
	if err != nil {
		log.Fatal(err)
	}
	var bytes int
	for _, it := range items {
		path := filepath.Join(*outdir, it.Name+".jpg")
		if err := os.WriteFile(path, it.Data, 0o644); err != nil {
			log.Fatal(err)
		}
		bytes += len(it.Data)
	}
	fmt.Printf("wrote %d images (%.1f MB) to %s\n", len(items), float64(bytes)/1e6, *outdir)
}
