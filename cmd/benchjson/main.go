// Command benchjson converts `go test -bench` output (stdin) into a
// stable JSON document (stdout): one record per benchmark with per-run
// samples and mean/min summaries. The repo's `make bench` target pipes
// the decode benchmarks through it to produce BENCH_<n>.json, the
// per-PR performance trajectory record that benchstat-style comparisons
// in README.md and PR descriptions are built from.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Sample is one benchmark run (one line of -count output).
type Sample struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Benchmark aggregates all runs of one benchmark name.
type Benchmark struct {
	Name        string   `json:"name"`
	Runs        int      `json:"runs"`
	NsPerOp     float64  `json:"ns_per_op"`     // mean
	MinNsPerOp  float64  `json:"min_ns_per_op"` // best run
	MBPerS      float64  `json:"mb_per_s,omitempty"`
	BytesPerOp  int64    `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64    `json:"allocs_per_op,omitempty"`
	Samples     []Sample `json:"samples"`
}

// Report is the top-level JSON document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep := Report{}
	byName := map[string]*Benchmark{}
	var order []string

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		s := Sample{Iterations: iters}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.NsPerOp = v
				ok = true
			case "MB/s":
				s.MBPerS = v
			case "B/op":
				s.BytesPerOp = int64(v)
			case "allocs/op":
				s.AllocsPerOp = int64(v)
			}
		}
		if !ok {
			continue
		}
		b := byName[name]
		if b == nil {
			b = &Benchmark{Name: name}
			byName[name] = b
			order = append(order, name)
		}
		b.Samples = append(b.Samples, s)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	sort.Strings(order)
	for _, name := range order {
		b := byName[name]
		b.Runs = len(b.Samples)
		b.MinNsPerOp = b.Samples[0].NsPerOp
		var ns, mb float64
		var bytes, allocs int64
		for _, s := range b.Samples {
			ns += s.NsPerOp
			mb += s.MBPerS
			bytes += s.BytesPerOp
			allocs += s.AllocsPerOp
			if s.NsPerOp < b.MinNsPerOp {
				b.MinNsPerOp = s.NsPerOp
			}
		}
		n := float64(b.Runs)
		b.NsPerOp = ns / n
		b.MBPerS = mb / n
		b.BytesPerOp = bytes / int64(b.Runs)
		b.AllocsPerOp = allocs / int64(b.Runs)
		rep.Benchmarks = append(rep.Benchmarks, *b)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
