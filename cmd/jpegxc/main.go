// Command jpegxc transcodes JPEG files: decode (optionally directly to
// 1/2, 1/4 or 1/8 scale), then re-encode with optimal Huffman tables
// and optional progressive output. Baseline inputs transcoded to 1/8
// ride the coefficient-domain DC-only fast path — no pixel-domain IDCT
// runs. Several positional files transcode as one concurrent batch over
// the heterogeneous decode pipeline.
//
// Usage:
//
//	jpegxc -in photo.jpg -out thumb.jpg -scale 1/8 -quality 80
//	jpegxc -scale 1/2 -progressive -script spectral -workers 8 *.jpg
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"hetjpeg"
	"hetjpeg/internal/batch"
	"hetjpeg/internal/core"
	"hetjpeg/internal/transcode"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jpegxc: ")

	in := flag.String("in", "", "input JPEG file (or pass files as arguments)")
	out := flag.String("out", "", "output file (single input; default <name>.xc.jpg)")
	outDir := flag.String("outdir", "", "output directory for batch mode (default alongside inputs)")
	scaleName := flag.String("scale", "1", "decode scale: 1|1/2|1/4|1/8 (scaled IDCT, not post-shrink)")
	quality := flag.Int("quality", 0, "output quality 1..100 (0 means 75)")
	progressive := flag.Bool("progressive", false, "emit a progressive (SOF2) output stream")
	script := flag.String("script", "", "progressive scan script: "+strings.Join(hetjpeg.ScriptNames(), "|"))
	subName := flag.String("subsampling", "444", "output chroma layout: 444|422|420")
	modeName := flag.String("mode", "pps", "decode mode: auto|sequential|simd|gpu|pipeline|sps|pps")
	schedName := flag.String("scheduler", "bands", "batch decode engine: bands|perimage")
	platformName := flag.String("platform", "GTX 560", `"GT 430", "GTX 560" or "GTX 680"`)
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "intra-image parallelism and batch concurrency")
	flag.Parse()

	files := flag.Args()
	if *in != "" {
		files = append([]string{*in}, files...)
	}
	if len(files) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *out != "" && len(files) > 1 {
		log.Fatal("-out only applies to a single input; use -outdir for batches")
	}

	scale, ok := hetjpeg.ParseScale(*scaleName)
	if !ok {
		log.Fatalf("unknown scale %q (want 1, 1/2, 1/4 or 1/8)", *scaleName)
	}
	var sub hetjpeg.Subsampling
	switch *subName {
	case "444":
		sub = hetjpeg.Sub444
	case "422":
		sub = hetjpeg.Sub422
	case "420":
		sub = hetjpeg.Sub420
	default:
		log.Fatalf("unknown subsampling %q (want 444, 422 or 420)", *subName)
	}
	opts := transcode.Options{
		Scale:       scale,
		Quality:     *quality,
		Progressive: *progressive,
		Script:      *script,
		Subsampling: sub,
		Workers:     *workers,
	}
	if err := opts.Validate(); err != nil {
		log.Fatal(err)
	}

	if len(files) > 1 {
		transcodeBatch(files, opts, *modeName, *schedName, *platformName, *outDir, *workers)
		return
	}

	data, err := os.ReadFile(files[0])
	if err != nil {
		log.Fatal(err)
	}
	res, err := transcode.Transcode(data, opts)
	if err != nil {
		log.Fatal(err)
	}
	dst := *out
	if dst == "" {
		dst = outputName(files[0], *outDir)
	}
	if err := os.WriteFile(dst, res.Data, 0o644); err != nil {
		log.Fatal(err)
	}
	printResult(files[0], dst, len(data), res)
}

// outputName derives <name>.xc.jpg alongside the input (or under dir).
func outputName(input, dir string) string {
	base := strings.TrimSuffix(filepath.Base(input), filepath.Ext(input)) + ".xc.jpg"
	if dir == "" {
		dir = filepath.Dir(input)
	}
	return filepath.Join(dir, base)
}

func printResult(src, dst string, inBytes int, res *transcode.Result) {
	path := "pixel"
	if res.FastPath {
		path = "DC fast path"
	}
	fmt.Printf("%s -> %s: %dx%d, %d -> %d bytes (%s, %s encode)\n",
		src, dst, res.W, res.H, inBytes, len(res.Data), path, res.Class)
	fmt.Printf("  decode %.2f ms, encode %.2f ms (%d MCUs)\n",
		float64(res.DecodeNs)/1e6, float64(res.EncodeNs)/1e6, res.MCUs)
}

// transcodeBatch runs the files through the pipelined front end: the
// decode stages share one heterogeneous batch executor while each
// finished decode re-encodes on its submitter's goroutine. A file that
// fails only fails its own slot.
func transcodeBatch(files []string, opts transcode.Options, modeName, schedName, platformName, outDir string, workers int) {
	spec := hetjpeg.PlatformByName(platformName)
	if spec == nil {
		log.Fatalf("unknown platform %q", platformName)
	}
	mode, ok := hetjpeg.ParseMode(modeName)
	if !ok {
		log.Fatalf("unknown mode %q", modeName)
	}
	sched, ok := hetjpeg.ParseScheduler(schedName)
	if !ok {
		log.Fatalf("unknown scheduler %q", schedName)
	}
	var model *hetjpeg.Model
	if mode == hetjpeg.ModeSPS || mode == hetjpeg.ModePPS {
		var err error
		if model, err = hetjpeg.Train(spec); err != nil {
			log.Fatal(err)
		}
	}
	p, err := transcode.NewPipeline(batch.Options{
		Spec: spec, Model: model, Mode: core.Mode(mode), Scheduler: sched,
		Workers: workers, Scale: opts.Scale,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	type slot struct {
		res *transcode.Result
		err error
	}
	slots := make([]slot, len(files))
	start := time.Now()
	var sem = make(chan struct{}, workers)
	done := make(chan int)
	for i, name := range files {
		go func(i int, name string) {
			defer func() { done <- i }()
			sem <- struct{}{}
			defer func() { <-sem }()
			data, err := os.ReadFile(name)
			if err != nil {
				slots[i].err = err
				return
			}
			slots[i].res, slots[i].err = p.Transcode(context.Background(), data, opts)
		}(i, name)
	}
	for range files {
		<-done
	}
	wall := time.Since(start)

	failed, fast := 0, 0
	for i, name := range files {
		switch s := slots[i]; {
		case s.err != nil:
			failed++
			fmt.Printf("  %-24s FAILED: %v\n", name, s.err)
		default:
			dst := outputName(name, outDir)
			if err := os.WriteFile(dst, s.res.Data, 0o644); err != nil {
				failed++
				fmt.Printf("  %-24s FAILED: %v\n", name, err)
				continue
			}
			if s.res.FastPath {
				fast++
			}
			fmt.Printf("  %-24s %4dx%-4d  %7d bytes  dec %6.2f ms  enc %6.2f ms\n",
				name, s.res.W, s.res.H, len(s.res.Data),
				float64(s.res.DecodeNs)/1e6, float64(s.res.EncodeNs)/1e6)
		}
	}
	fmt.Printf("\n%d files (%d failed, %d fast-path) on %s with %s, %d workers\n",
		len(files), failed, fast, spec, mode, workers)
	fmt.Printf("wall clock: %.2f ms\n", float64(wall.Microseconds())/1000)
	if failed > 0 {
		os.Exit(1)
	}
}
