// Command profile runs the offline profiling step of Section 5.1 for one
// simulated platform: it builds the training corpora, profiles every
// image, fits the polynomial performance model (AIC-selected degree,
// Horner form) and the pipelining chunk size (Section 4.5), and writes
// the model as JSON for later decodes.
//
// Usage:
//
//	profile -platform "GTX 680" -out gtx680.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"hetjpeg"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/perfmodel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("profile: ")

	platformName := flag.String("platform", "GTX 560", `"GT 430", "GTX 560" or "GTX 680"`)
	out := flag.String("out", "", "output model JSON path (required)")
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	spec := hetjpeg.PlatformByName(*platformName)
	if spec == nil {
		log.Fatalf("unknown platform %q", *platformName)
	}

	start := time.Now()
	model, err := perfmodel.Train(spec)
	if err != nil {
		log.Fatal(err)
	}
	if err := model.Save(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %s in %v\n", spec, time.Since(start).Round(time.Millisecond))
	fmt.Printf("chunk size: %d MCU rows\n", model.ChunkRows)
	for _, sub := range []jfif.Subsampling{jfif.Sub422, jfif.Sub444, jfif.Sub420} {
		if sm := model.ForSub(sub); sm != nil {
			fmt.Printf("%s: Huffman poly degree %d, PCPU degree %d, PGPU degree %d\n",
				sub, sm.HuffPerPixel.Degree(), sm.PCPU.Deg, sm.PGPU.Deg)
		}
	}
	fmt.Printf("wrote %s\n", *out)
}
