// Command profile runs the offline profiling step of Section 5.1 for one
// simulated platform: it builds the training corpora, profiles every
// image, fits the polynomial performance model (AIC-selected degree,
// Horner form) and the pipelining chunk size (Section 4.5), and writes
// the model as JSON for later decodes.
//
// With -cpuprofile / -memprofile it also emits pprof artifacts covering
// the run — the profiling step exercises the full decode hot path
// (entropy decode, sparse IDCT dispatch, fused upsample+color bands), so
// this is the quickest way to inspect where decode time goes:
//
//	profile -platform "GTX 680" -out gtx680.json -cpuprofile cpu.prof
//	go tool pprof cpu.prof
//
// Usage:
//
//	profile -platform "GTX 680" -out gtx680.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"hetjpeg"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/perfmodel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("profile: ")

	platformName := flag.String("platform", "GTX 560", `"GT 430", "GTX 560" or "GTX 680"`)
	out := flag.String("out", "", "output model JSON path (required)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (after the run) to this path")
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	// run carries the work so its defers (profile flush, file close) fire
	// before any exit — log.Fatal here would leave a truncated cpu.prof.
	if err := run(*platformName, *out, *cpuprofile, *memprofile); err != nil {
		log.Fatal(err)
	}
}

func run(platformName, out, cpuprofile, memprofile string) error {
	spec := hetjpeg.PlatformByName(platformName)
	if spec == nil {
		return fmt.Errorf("unknown platform %q", platformName)
	}

	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	start := time.Now()
	model, err := perfmodel.Train(spec)
	if err != nil {
		return err
	}
	if err := model.Save(out); err != nil {
		return err
	}
	fmt.Printf("profiled %s in %v\n", spec, time.Since(start).Round(time.Millisecond))
	fmt.Printf("chunk size: %d MCU rows\n", model.ChunkRows)
	for _, sub := range []jfif.Subsampling{jfif.Sub422, jfif.Sub444, jfif.Sub420} {
		if sm := model.ForSub(sub); sm != nil {
			fmt.Printf("%s: Huffman poly degree %d, PCPU degree %d, PGPU degree %d\n",
				sub, sm.HuffPerPixel.Degree(), sm.PCPU.Deg, sm.PGPU.Deg)
		}
	}
	fmt.Printf("wrote %s\n", out)

	if memprofile != "" {
		f, err := os.Create(memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // settle allocations so the heap profile reflects retention
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", memprofile)
	}
	return nil
}
