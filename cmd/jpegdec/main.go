// Command jpegdec decodes a baseline JPEG file with any of the six
// decoder modes on any simulated platform, writes the result as PNG, and
// reports the virtual schedule.
//
// Usage:
//
//	jpegdec -in photo.jpg -out photo.png -mode pps -platform "GTX 560"
package main

import (
	"flag"
	"fmt"
	"image/png"
	"log"
	"os"

	"hetjpeg"
	"hetjpeg/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jpegdec: ")

	in := flag.String("in", "", "input JPEG file (required)")
	out := flag.String("out", "", "output PNG file (optional)")
	modeName := flag.String("mode", "pps", "sequential|simd|gpu|pipeline|sps|pps")
	platformName := flag.String("platform", "GTX 560", `"GT 430", "GTX 560" or "GTX 680"`)
	modelPath := flag.String("model", "", "performance model JSON (default: train in-process)")
	chunk := flag.Int("chunk", 0, "override pipelining chunk size in MCU rows")
	split := flag.Bool("split-kernels", false, "disable Section 4.4 kernel merging")
	report := flag.Bool("report", true, "print the virtual schedule breakdown")
	gantt := flag.Bool("gantt", false, "print an ASCII Gantt chart of the schedule")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	spec := hetjpeg.PlatformByName(*platformName)
	if spec == nil {
		log.Fatalf("unknown platform %q", *platformName)
	}
	var mode core.Mode
	found := false
	for _, m := range hetjpeg.AllModes() {
		if m.String() == *modeName {
			mode, found = m, true
		}
	}
	if !found {
		log.Fatalf("unknown mode %q", *modeName)
	}

	var model *hetjpeg.Model
	if mode == hetjpeg.ModeSPS || mode == hetjpeg.ModePPS {
		if *modelPath != "" {
			model, err = hetjpeg.LoadModel(*modelPath)
		} else {
			log.Printf("training performance model for %s (use -model to reuse a saved one)", spec.Name)
			model, err = hetjpeg.Train(spec)
		}
		if err != nil {
			log.Fatal(err)
		}
	}

	res, err := hetjpeg.Decode(data, hetjpeg.Options{
		Mode:         mode,
		Spec:         spec,
		Model:        model,
		ChunkRows:    *chunk,
		SplitKernels: *split,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("decoded %dx%d (%s) with %s on %s\n",
		res.Image.W, res.Image.H, res.Frame.Sub, mode, spec)
	fmt.Printf("virtual time: %.2f ms (Huffman %.2f ms, %.0f%% of schedule)\n",
		res.TotalNs/1e6, res.HuffNs/1e6, 100*res.HuffNs/res.TotalNs)
	fmt.Printf("split: %d MCU rows on GPU, %d on CPU, %d chunk(s)",
		res.Stats.GPUMCURows, res.Stats.CPUMCURows, res.Stats.Chunks)
	if res.Stats.Repartitioned {
		fmt.Printf(" (re-partitioned by %+d rows)", res.Stats.RepartitionDeltaRows)
	}
	fmt.Println()
	if *report {
		for _, bd := range res.Timeline.SortedBreakdown() {
			fmt.Printf("  %-16s %10.3f ms\n", bd.Kind, bd.Total/1e6)
		}
	}
	if *gantt {
		fmt.Print(res.Timeline.Gantt(100))
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := png.Encode(f, hetjpeg.ToStdImage(res.Image)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
