// Command jpegdec decodes baseline or progressive JPEG files with any
// of the six decoder modes on any simulated platform, writes a single
// result as PNG, and reports the virtual schedule. Several positional files are
// decoded as one concurrent batch with per-image failure isolation.
//
// Usage:
//
//	jpegdec -in photo.jpg -out photo.png -mode pps -platform "GTX 560"
//	jpegdec -mode pps -workers 8 a.jpg b.jpg c.jpg
package main

import (
	"errors"
	"flag"
	"fmt"
	"image/png"
	"log"
	"os"
	"runtime"
	"time"

	"hetjpeg"
	"hetjpeg/internal/core"
)

// exitSalvaged is the exit code for decodes that produced pixels but
// lost part of the stream (-salvage): distinct from 1 (fatal error) so
// scripts can tell "degraded output written" from "no output".
const exitSalvaged = 3

func main() {
	log.SetFlags(0)
	log.SetPrefix("jpegdec: ")

	in := flag.String("in", "", "input JPEG file (or pass files as arguments)")
	out := flag.String("out", "", "output PNG file (optional, single input only)")
	modeName := flag.String("mode", "pps", "auto|sequential|simd|gpu|pipeline|sps|pps")
	scaleName := flag.String("scale", "1", "decode scale: 1|1/2|1/4|1/8 (scaled IDCT, not post-shrink)")
	schedName := flag.String("scheduler", "bands", "batch wall-clock engine: bands|perimage")
	platformName := flag.String("platform", "GTX 560", `"GT 430", "GTX 560" or "GTX 680"`)
	modelPath := flag.String("model", "", "performance model JSON (default: train in-process)")
	chunk := flag.Int("chunk", 0, "override pipelining chunk size in MCU rows")
	split := flag.Bool("split-kernels", false, "disable Section 4.4 kernel merging")
	report := flag.Bool("report", true, "print the virtual schedule breakdown")
	gantt := flag.Bool("gantt", false, "print an ASCII Gantt chart of the schedule")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent decodes in batch mode")
	salvage := flag.Bool("salvage", false, "salvage partial images from corrupt streams (exit 3 when impaired)")
	flag.Parse()

	files := flag.Args()
	if *in != "" {
		files = append([]string{*in}, files...)
	}
	if len(files) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	spec := hetjpeg.PlatformByName(*platformName)
	if spec == nil {
		log.Fatalf("unknown platform %q", *platformName)
	}
	mode, ok := hetjpeg.ParseMode(*modeName)
	if !ok {
		log.Fatalf("unknown mode %q", *modeName)
	}
	sched, ok := hetjpeg.ParseScheduler(*schedName)
	if !ok {
		log.Fatalf("unknown scheduler %q", *schedName)
	}
	scale, ok := hetjpeg.ParseScale(*scaleName)
	if !ok {
		log.Fatalf("unknown scale %q (want 1, 1/2, 1/4 or 1/8)", *scaleName)
	}

	var model *hetjpeg.Model
	var err error
	if mode == hetjpeg.ModeSPS || mode == hetjpeg.ModePPS {
		if *modelPath != "" {
			model, err = hetjpeg.LoadModel(*modelPath)
		} else {
			log.Printf("training performance model for %s (use -model to reuse a saved one)", spec.Name)
			model, err = hetjpeg.Train(spec)
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	// Resolve the auto sentinel so every report names the mode that
	// actually ran.
	mode = mode.Resolve(model)

	if len(files) > 1 {
		decodeBatch(files, spec, model, mode, sched, scale, *workers, *salvage)
		return
	}

	data, err := os.ReadFile(files[0])
	if err != nil {
		log.Fatal(err)
	}
	res, err := hetjpeg.Decode(data, hetjpeg.Options{
		Mode:         mode,
		Spec:         spec,
		Model:        model,
		ChunkRows:    *chunk,
		SplitKernels: *split,
		Scale:        scale,
		Salvage:      *salvage,
	})
	// Under -salvage a recoverable stream yields BOTH a usable result
	// and an ErrPartialData error; only a nil result is fatal.
	if res == nil {
		log.Fatal(err)
	}
	salvaged := err != nil
	// Hand the pixel and coefficient slabs back once the report and the
	// optional PNG are written (poolcheck: release on every path).
	defer res.Release()
	if salvaged {
		printSalvageReport(res.Salvage, err)
	}

	coding := "baseline"
	if res.Stats.EntropyScans > 1 {
		coding = fmt.Sprintf("progressive, %d scans", res.Stats.EntropyScans)
	}
	if res.Stats.Scale > 1 {
		coding += fmt.Sprintf(", scale 1/%d", res.Stats.Scale)
	}
	fmt.Printf("decoded %dx%d (%s, %s) with %s on %s\n",
		res.Image.W, res.Image.H, res.Frame.Sub, coding, mode, spec)
	fmt.Printf("virtual time: %.2f ms (Huffman %.2f ms, %.0f%% of schedule)\n",
		res.TotalNs/1e6, res.HuffNs/1e6, 100*res.HuffNs/res.TotalNs)
	fmt.Printf("split: %d MCU rows on GPU, %d on CPU, %d chunk(s)",
		res.Stats.GPUMCURows, res.Stats.CPUMCURows, res.Stats.Chunks)
	if res.Stats.Repartitioned {
		fmt.Printf(" (re-partitioned by %+d rows)", res.Stats.RepartitionDeltaRows)
	}
	fmt.Println()
	if *report {
		for _, bd := range res.Timeline.SortedBreakdown() {
			fmt.Printf("  %-16s %10.3f ms\n", bd.Kind, bd.Total/1e6)
		}
	}
	if *gantt {
		fmt.Print(res.Timeline.Gantt(100))
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := png.Encode(f, hetjpeg.ToStdImage(res.Image)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if salvaged {
		// os.Exit skips the deferred Release, so release here first.
		res.Release()
		os.Exit(exitSalvaged)
	}
}

// printSalvageReport describes a salvaged decode: what was recovered,
// where the damage sits, and the errors that were absorbed.
func printSalvageReport(rep *hetjpeg.SalvageReport, err error) {
	fmt.Printf("SALVAGED: %v\n", err)
	if rep == nil {
		return
	}
	fmt.Printf("  recovered %d of %d MCUs (%d resyncs, %d damaged regions)\n",
		rep.RecoveredMCUs, rep.TotalMCUs, rep.Resyncs, len(rep.Damaged))
	for _, d := range rep.Damaged {
		fmt.Printf("  damaged: MCUs %d-%d\n", d.FirstMCU, d.FirstMCU+d.NumMCU-1)
	}
	for _, se := range rep.Errors {
		fmt.Printf("  scan %d: %v\n", se.Scan, se.Err)
	}
}

// decodeBatch decodes several files as one concurrent batch. A file
// that fails to read or decode is reported in its slot; the others
// still decode. With salvage, partially recovered images print as
// SALVAGED and the process exits with code 3.
func decodeBatch(files []string, spec *hetjpeg.Platform, model *hetjpeg.Model, mode core.Mode, sched hetjpeg.BatchScheduler, scale hetjpeg.Scale, workers int, salvage bool) {
	datas := make([][]byte, len(files))
	readErr := make([]error, len(files))
	for i, name := range files {
		datas[i], readErr[i] = os.ReadFile(name)
	}
	start := time.Now()
	res, err := hetjpeg.DecodeBatch(datas, hetjpeg.BatchOptions{
		Spec: spec, Model: model, Mode: mode, Scheduler: sched, Workers: workers, Scale: scale,
		Salvage: salvage,
	})
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	failed, salvaged := 0, 0
	for i, ir := range res.Images {
		switch {
		case readErr[i] != nil:
			failed++
			fmt.Printf("  %-24s FAILED: %v\n", files[i], readErr[i])
		case ir.Res == nil:
			failed++
			fmt.Printf("  %-24s FAILED: %v\n", files[i], ir.Err)
		case ir.Err != nil && errors.Is(ir.Err, hetjpeg.ErrPartialData):
			salvaged++
			rep := ir.Res.Salvage
			fmt.Printf("  %-24s SALVAGED: %d of %d MCUs recovered (%d resyncs)\n",
				files[i], rep.RecoveredMCUs, rep.TotalMCUs, rep.Resyncs)
			ir.Res.Release()
		default:
			fmt.Printf("  %-24s %4dx%-4d  %7.2f ms  (gpu %d / cpu %d rows)\n",
				files[i], ir.Res.Image.W, ir.Res.Image.H, ir.Res.TotalNs/1e6,
				ir.Res.Stats.GPUMCURows, ir.Res.Stats.CPUMCURows)
			// The report only needs the metadata above; recycle the
			// pooled buffers before the next image prints.
			ir.Res.Release()
		}
	}
	fmt.Printf("\n%d images (%d failed, %d salvaged) on %s with %s, %d workers\n",
		len(files), failed, salvaged, spec, mode, workers)
	fmt.Printf("virtual: serial %.2f ms, overlapped %.2f ms (gain %.3fx)\n",
		res.SerialNs/1e6, res.PipelinedNs/1e6, res.Gain())
	fmt.Printf("wall clock: %.2f ms\n", float64(wall.Microseconds())/1000)
	if salvaged > 0 {
		os.Exit(exitSalvaged)
	}
}
