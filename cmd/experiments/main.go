// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 6) and writes the text reports to an output
// directory. The per-experiment index lives in DESIGN.md; measured-vs-
// paper numbers are recorded in EXPERIMENTS.md.
//
// Usage:
//
//	experiments -outdir results          # run everything
//	experiments -exp fig9,table2         # selected experiments
//	experiments -full                    # paper-scale sweeps (slow)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hetjpeg/internal/harness"
	"hetjpeg/internal/imagegen"
	"hetjpeg/internal/jfif"
	"hetjpeg/internal/perfmodel"
	"hetjpeg/internal/platform"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	outdir := flag.String("outdir", "results", "output directory")
	exps := flag.String("exp", "all", "comma list: table1,fig6,fig7,fig9,fig10,fig11,fig12,table2,table3")
	full := flag.Bool("full", false, "paper-scale sweeps up to 25 MP (slow)")
	flag.Parse()

	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		log.Fatal(err)
	}
	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	sizes := [][2]int{
		{512, 384}, {800, 600}, {1024, 768}, {1600, 1200}, {2048, 1536}, {2560, 1920},
	}
	if *full {
		sizes = append(sizes, [][2]int{{3200, 2400}, {4096, 3072}, {5120, 3840}, {5792, 4344}}...)
	}

	write := func(name, content string) {
		path := filepath.Join(*outdir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	var models map[string]*perfmodel.Model
	needModels := all || want["table2"] || want["table3"] || want["fig10"] || want["fig11"] || want["fig12"]
	if needModels {
		models = map[string]*perfmodel.Model{}
		for _, spec := range platform.All() {
			start := time.Now()
			m, err := perfmodel.Default(spec)
			if err != nil {
				log.Fatal(err)
			}
			models[spec.Name] = m
			fmt.Printf("trained model for %s in %v (chunk=%d rows)\n",
				spec.Name, time.Since(start).Round(time.Millisecond), m.ChunkRows)
		}
	}

	if all || want["table1"] {
		write("table1.txt", harness.Table1Text())
	}
	if all || want["fig6"] {
		r, err := harness.Figure6(platform.GTX560(), sizes)
		if err != nil {
			log.Fatal(err)
		}
		write("figure6.txt", r.Text())
	}
	if all || want["fig7"] {
		var b strings.Builder
		for _, sub := range []jfif.Subsampling{jfif.Sub422, jfif.Sub444} {
			r, err := harness.Figure7(platform.GTX560(), sub)
			if err != nil {
				log.Fatal(err)
			}
			b.WriteString(r.Text())
			b.WriteString("\n")
		}
		write("figure7.txt", b.String())
	}
	if all || want["fig9"] {
		cols, err := harness.Figure9(2048)
		if err != nil {
			log.Fatal(err)
		}
		write("figure9.txt", harness.Fig9Text(cols))
	}
	if all || want["table2"] || want["table3"] {
		for _, tc := range []struct {
			sub  jfif.Subsampling
			name string
		}{{jfif.Sub422, "table2"}, {jfif.Sub444, "table3"}} {
			if !all && !want[tc.name] {
				continue
			}
			corpus, err := imagegen.Build(imagegen.DefaultTest(tc.sub))
			if err != nil {
				log.Fatal(err)
			}
			cells, err := harness.SpeedupTable(tc.sub, corpus, models)
			if err != nil {
				log.Fatal(err)
			}
			title := fmt.Sprintf("%s — mean speedup over SIMD, %s (%d images)", strings.Title(tc.name), tc.sub, len(corpus))
			write(tc.name+".txt", harness.SpeedupTableText(title, cells))
		}
	}
	if all || want["fig10"] {
		pts, err := harness.Figure10(jfif.Sub444, sizes, models)
		if err != nil {
			log.Fatal(err)
		}
		write("figure10.txt", harness.Fig10Text(pts))
	}
	if all || want["fig11"] {
		pts, err := harness.Figure11(platform.GTX680(), jfif.Sub444, sizes, models["GTX 680"])
		if err != nil {
			log.Fatal(err)
		}
		write("figure11.txt", harness.Fig11Text("GTX 680", pts))
	}
	if all || want["fig12"] {
		pts, err := harness.Figure12(jfif.Sub444, sizes, models)
		if err != nil {
			log.Fatal(err)
		}
		write("figure12.txt", harness.Fig12Text(pts))
	}
}
