// Command hetaudit is the codegen-regression gate for the decoder's
// hot packages. It rebuilds them with the compiler's bounds-check
// debugging (-d=ssa/check_bce/debug=1) and escape analysis (-m)
// diagnostics on, aggregates the findings per (file, function, kind),
// and diffs the aggregate against the committed baselines in
// internal/lint/testdata/. Any NEW bounds check or heap escape in a
// hot package fails the gate — those loops were shaped so the
// compiler proves their indexes and keeps their scratch on the stack,
// and losing that is a performance regression go test cannot see.
//
// Usage:
//
//	hetaudit            # audit and diff against the baselines (CI mode)
//	hetaudit -bless     # re-bless: rewrite the baselines from this tree
//
// Raw compiler output is written to hetaudit_bce.txt and
// hetaudit_escape.txt (gitignored) for inspection.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"hetjpeg/internal/lint"
)

// hotPackages are the import paths whose codegen is under audit: the
// per-sample inner loops (IDCT, bitstream, Huffman, color) and the
// codec layer that drives them.
var hotPackages = []string{
	"hetjpeg/internal/dct",
	"hetjpeg/internal/bitstream",
	"hetjpeg/internal/huffman",
	"hetjpeg/internal/color",
	"hetjpeg/internal/jpegcodec",
}

const (
	bceBaseline    = "internal/lint/testdata/bce_baseline.txt"
	escapeBaseline = "internal/lint/testdata/escape_baseline.txt"
)

func main() {
	bless := flag.Bool("bless", false, "rewrite the committed baselines from the current tree")
	dir := flag.String("dir", "", "repo root (default: current directory)")
	flag.Parse()

	root := *dir
	if root == "" {
		root, _ = os.Getwd()
	}

	bceOut, err := compileWithFlags(root, "-d=ssa/check_bce/debug=1")
	if err != nil {
		fatal(err)
	}
	escOut, err := compileWithFlags(root, "-m")
	if err != nil {
		fatal(err)
	}
	_ = lint.WriteRawAudit(filepath.Join(root, "hetaudit_bce.txt"), bceOut)
	_ = lint.WriteRawAudit(filepath.Join(root, "hetaudit_escape.txt"), escOut)

	bce, err := lint.Summarize(root, lint.ParseBCE(bceOut))
	if err != nil {
		fatal(err)
	}
	esc, err := lint.Summarize(root, lint.ParseEscape(escOut))
	if err != nil {
		fatal(err)
	}

	if *bless {
		writeBaseline(root, bceBaseline,
			lint.FormatBaseline("Bounds checks the compiler could not eliminate in the hot packages.", bce))
		writeBaseline(root, escapeBaseline,
			lint.FormatBaseline("Heap escapes in the hot packages.", esc))
		fmt.Printf("hetaudit: blessed %s (%d sites) and %s (%d sites)\n",
			bceBaseline, total(bce), escapeBaseline, total(esc))
		return
	}

	failed := false
	failed = diff(root, "bounds checks", bceBaseline, bce) || failed
	failed = diff(root, "heap escapes", escapeBaseline, esc) || failed
	if failed {
		os.Exit(1)
	}
	fmt.Printf("hetaudit: codegen clean (%d bounds-check sites, %d escape sites, all baselined)\n",
		total(bce), total(esc))
}

// compileWithFlags builds each hot package with the given gcflags
// applied to it alone and returns the concatenated compiler stderr.
// The build cache replays diagnostics on cache hits, so repeated runs
// are fast and deterministic.
func compileWithFlags(root, flags string) (string, error) {
	var out strings.Builder
	for _, pkg := range hotPackages {
		cmd := exec.Command("go", "build", "-gcflags="+pkg+"="+flags, pkg)
		cmd.Dir = root
		var stderr strings.Builder
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			return "", fmt.Errorf("hetaudit: go build %s: %w\n%s", pkg, err, stderr.String())
		}
		out.WriteString(stderr.String())
	}
	return out.String(), nil
}

func diff(root, what, baselinePath string, current map[lint.AuditKey]int) bool {
	text, err := os.ReadFile(filepath.Join(root, baselinePath))
	if err != nil {
		fmt.Fprintf(os.Stderr, "hetaudit: no baseline %s (run `make lint-baseline` once and commit it): %v\n",
			baselinePath, err)
		return true
	}
	baseline, err := lint.ParseBaseline(string(text))
	if err != nil {
		fmt.Fprintf(os.Stderr, "hetaudit: %s: %v\n", baselinePath, err)
		return true
	}
	regressions, improvements := lint.DiffBaseline(baseline, current)
	for _, s := range improvements {
		fmt.Printf("hetaudit: improved (re-bless to lock in): %s\n", s)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "hetaudit: NEW %s in hot packages (vs %s):\n", what, baselinePath)
		for _, s := range regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", s)
		}
		fmt.Fprintf(os.Stderr, "  If intentional, re-bless with `make lint-baseline` and commit the diff.\n")
		return true
	}
	return false
}

func writeBaseline(root, rel, content string) {
	if err := os.WriteFile(filepath.Join(root, rel), []byte(content), 0o644); err != nil {
		fatal(err)
	}
}

func total(m map[lint.AuditKey]int) int {
	n := 0
	for _, c := range m {
		n += c
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
