// Loadgen drives an imaged server with closed-loop HTTP clients and
// records the robustness trajectory the service promises: latency
// percentiles while healthy, honest shedding (429 + Retry-After) under
// overload, and degraded 1/8-scale completions for opted-in requests.
//
// With no -addr it spins an in-process imaged server on a loopback
// listener, so `make bench-http` needs no port juggling and measures
// the full HTTP stack. Three scenarios run back to back:
//
//   - steady: concurrency ≈ decode workers, every request bypassing the
//     decoded-output cache — the healthy-tier decode numbers (p50/p99
//     wall latency, zero shedding expected);
//   - overload: concurrency several times the admission budget, cache
//     bypassed — the shed rate, Retry-After hints and degraded
//     completions;
//   - hot-repeat: the steady mix with the cache in the path — the same
//     few images requested over and over, the gallery traffic the cache
//     exists for. Its p50 against steady's is the cache's speedup; the
//     summary records the hit rate alongside.
//
// The summary JSON (BENCH_6.json in the repo history) is one entry per
// scenario.
//
//	go run ./cmd/loadgen -out BENCH_6.json
//	go run ./cmd/loadgen -addr host:8080 -duration 10s -concurrency 64
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hetjpeg"
	"hetjpeg/internal/imaged"
)

type scenarioResult struct {
	Name        string  `json:"name"`
	Concurrency int     `json:"concurrency"`
	DurationMs  float64 `json:"durationMs"`
	Requests    int     `json:"requests"`
	OK          int     `json:"ok"`
	Shed        int     `json:"shed"`
	Degraded    int     `json:"degraded"`
	Salvaged    int     `json:"salvaged"`
	Timeouts    int     `json:"timeouts"`
	Errors      int     `json:"errors"`
	// Latency percentiles over successful (200) requests, wall time.
	P50Ms  float64 `json:"p50Ms"`
	P99Ms  float64 `json:"p99Ms"`
	MeanMs float64 `json:"meanMs"`
	// ShedRate is 429s over all requests; RetryAfterMean the mean hint.
	ShedRate       float64 `json:"shedRate"`
	RetryAfterMean float64 `json:"retryAfterMeanSec,omitempty"`
	Throughput     float64 `json:"throughputRps"`
	// Cache outcome counts over 200s (X-Hetjpeg-Cache header) and the
	// hit fraction; all zero for scenarios that run with ?cache=bypass.
	CacheHits    int     `json:"cacheHits,omitempty"`
	CacheWaits   int     `json:"cacheWaits,omitempty"`
	CacheMisses  int     `json:"cacheMisses,omitempty"`
	CacheHitRate float64 `json:"cacheHitRate,omitempty"`
}

type summary struct {
	GOOS      string           `json:"goos"`
	GOARCH    string           `json:"goarch"`
	CPUs      int              `json:"cpus"`
	Workers   int              `json:"workers"`
	MaxQueue  int              `json:"maxQueue"`
	Scenarios []scenarioResult `json:"scenarios"`
}

func main() {
	addr := flag.String("addr", "", "target imaged server (empty: run one in-process)")
	out := flag.String("out", "", "summary JSON path (empty: stdout only)")
	duration := flag.Duration("duration", 3*time.Second, "per-scenario run time")
	steady := flag.Int("concurrency", 0, "steady-scenario client count (0 = decode workers)")
	workers := flag.Int("workers", 0, "in-process server decode workers (0 = GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 0, "in-process server admission cap (0 = 4×workers)")
	platformName := flag.String("platform", "GTX 560", "in-process server platform")
	flag.Parse()

	if err := run(*addr, *out, *duration, *steady, *workers, *maxQueue, *platformName); err != nil {
		log.Fatal(err)
	}
}

func run(addr, out string, duration time.Duration, steady, workers, maxQueue int, platformName string) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if maxQueue <= 0 {
		maxQueue = 4 * workers
		if maxQueue < 8 {
			maxQueue = 8
		}
	}
	if steady <= 0 {
		steady = workers
	}

	base := addr
	if base == "" {
		spec := hetjpeg.PlatformByName(platformName)
		if spec == nil {
			return fmt.Errorf("unknown platform %q", platformName)
		}
		s, err := imaged.New(imaged.Config{
			Spec:     spec,
			Mode:     hetjpeg.ModePipelinedGPU,
			Workers:  workers,
			MaxQueue: maxQueue,
			Salvage:  true,
			Log:      log.New(nopWriter{}, "", 0),
		})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: s.Handler()}
		go func() { _ = srv.Serve(ln) }()
		defer func() {
			s.StartDrain()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
			s.Close()
		}()
		base = ln.Addr().String()
		log.Printf("loadgen: in-process imaged on %s (%d workers, queue %d)", base, workers, maxQueue)
	}
	url := "http://" + base + "/decode"

	corpus := buildCorpus()
	sum := summary{
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
		CPUs:     runtime.NumCPU(),
		Workers:  workers,
		MaxQueue: maxQueue,
	}
	// Warm the calibrator (and the connection pool) before measuring.
	for _, img := range corpus {
		resp, err := http.Post(url, "image/jpeg", bytes.NewReader(img))
		if err != nil {
			return fmt.Errorf("warmup: %w", err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	for _, sc := range []struct {
		name        string
		concurrency int
		query       string
	}{
		// steady and overload measure the decode path itself, so they
		// opt out of the cache (the corpus is 3 images round-robin —
		// cached, everything would be a hit). hot-repeat is that cached
		// case, on purpose: steady vs hot-repeat is the cache's speedup.
		{"steady", steady, "cache=bypass"},
		{"overload", 4 * maxQueue, "cache=bypass"},
		{"hot-repeat", steady, ""},
	} {
		res := drive(url, corpus, sc.query, sc.concurrency, duration)
		res.Name = sc.name
		sum.Scenarios = append(sum.Scenarios, res)
		log.Printf("loadgen: %-10s conc=%-3d req=%-6d ok=%-6d p50=%.2fms p99=%.1fms shed=%.1f%% degraded=%d hit=%.0f%%",
			res.Name, res.Concurrency, res.Requests, res.OK, res.P50Ms, res.P99Ms, 100*res.ShedRate, res.Degraded, 100*res.CacheHitRate)
	}

	blob, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out != "" {
		if err := os.WriteFile(out, blob, 0o644); err != nil {
			return err
		}
		log.Printf("loadgen: wrote %s", out)
	} else {
		os.Stdout.Write(blob)
	}
	return nil
}

// buildCorpus encodes the request mix: small/medium/large textured
// JPEGs, the gallery spread the paper's workload assumes.
func buildCorpus() [][]byte {
	sizes := [][2]int{{256, 256}, {512, 384}, {1024, 768}}
	corpus := make([][]byte, 0, len(sizes))
	for si, wh := range sizes {
		img := hetjpeg.NewImage(wh[0], wh[1])
		for y := 0; y < wh[1]; y++ {
			for x := 0; x < wh[0]; x++ {
				v := byte((x*2654435761 + y*40503 + si*97) >> 3)
				img.Set(x, y, v, v^0x5A, byte(x*y))
			}
		}
		data, err := hetjpeg.Encode(img, hetjpeg.EncodeOptions{Quality: 90, Subsampling: hetjpeg.Sub422})
		if err != nil {
			log.Fatalf("corpus encode %dx%d: %v", wh[0], wh[1], err)
		}
		corpus = append(corpus, data)
	}
	return corpus
}

// drive runs one closed-loop scenario: concurrency clients, each
// posting the corpus round-robin until the deadline; every 4th request
// opts into degradation, the way a thumbnail tier would. query is the
// scenario's base query string ("cache=bypass" or empty).
func drive(url string, corpus [][]byte, query string, concurrency int, duration time.Duration) scenarioResult {
	var (
		mu         sync.Mutex
		latencies  []float64
		res        = scenarioResult{Concurrency: concurrency}
		retrySum   float64
		retryCount int
		seq        atomic.Int64
	)
	deadline := time.Now().Add(duration)
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: concurrency}}
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				n := seq.Add(1)
				img := corpus[int(n)%len(corpus)]
				q := query
				if n%4 == 0 {
					if q != "" {
						q += "&"
					}
					q += "degrade=allow"
				}
				if q != "" {
					q = "?" + q
				}
				t0 := time.Now()
				resp, err := client.Post(url+q, "image/jpeg", bytes.NewReader(img))
				lat := float64(time.Since(t0).Microseconds()) / 1000
				mu.Lock()
				res.Requests++
				if err != nil {
					res.Errors++
					mu.Unlock()
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					res.OK++
					latencies = append(latencies, lat)
					if resp.Header.Get("X-Hetjpeg-Degraded") == "true" {
						res.Degraded++
					}
					if resp.Header.Get("X-Hetjpeg-Salvaged") == "true" {
						res.Salvaged++
					}
					switch resp.Header.Get("X-Hetjpeg-Cache") {
					case "hit":
						res.CacheHits++
					case "wait":
						res.CacheWaits++
					case "miss":
						res.CacheMisses++
					}
				case http.StatusTooManyRequests:
					res.Shed++
					var sec float64
					if _, err := fmt.Sscanf(resp.Header.Get("Retry-After"), "%f", &sec); err == nil {
						retrySum += sec
						retryCount++
					}
				case http.StatusServiceUnavailable:
					res.Timeouts++
				default:
					res.Errors++
				}
				mu.Unlock()
				// Drain so the connection is reusable.
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	res.DurationMs = float64(elapsed.Microseconds()) / 1000
	res.P50Ms = percentile(latencies, 0.50)
	res.P99Ms = percentile(latencies, 0.99)
	if len(latencies) > 0 {
		var s float64
		for _, l := range latencies {
			s += l
		}
		res.MeanMs = s / float64(len(latencies))
	}
	if res.Requests > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Requests)
	}
	if retryCount > 0 {
		res.RetryAfterMean = retrySum / float64(retryCount)
	}
	if res.OK > 0 {
		res.CacheHitRate = float64(res.CacheHits) / float64(res.OK)
	}
	res.Throughput = float64(res.OK) / elapsed.Seconds()
	return res
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return sorted[i]
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }
