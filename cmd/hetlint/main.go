// Command hetlint is hetjpeg's project-specific static-analysis
// multichecker. It loads the packages matching its arguments (./... by
// default), type-checks them against the compiler's export data, and
// runs the suite in internal/lint:
//
//	poolcheck     pool.Slab.Get/Put pairing, use-after-Put, Result.Release
//	errwrapcheck  %w-wrapping of errors (typed sentinels survive errors.Is)
//	ctxloopcheck  ctx polling in data-sized loops
//
// Findings print as file:line:col: analyzer: message; any finding exits
// nonzero. Deliberate ownership handoffs are annotated in source with
// `//hetlint:transfer`, deliberate non-polling loops with
// `//hetlint:nopoll` — see the Static analysis section of README.md.
//
// Usage:
//
//	hetlint [-q] [packages]
package main

import (
	"flag"
	"fmt"
	"os"

	"hetjpeg/internal/lint"
)

func main() {
	quiet := flag.Bool("q", false, "print findings only, no summary")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetlint:", err)
		os.Exit(2)
	}
	analyzers := lint.Analyzers()
	total := 0
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hetlint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
		}
		total += len(diags)
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "hetlint: %d finding(s) in %d package(s)\n", total, len(pkgs))
		os.Exit(1)
	}
	if !*quiet {
		fmt.Printf("hetlint: %d package(s) clean (poolcheck, errwrapcheck, ctxloopcheck)\n", len(pkgs))
	}
}
